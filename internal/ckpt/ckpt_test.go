package ckpt

import (
	"bytes"
	"hash/crc32"
	"testing"
	"time"

	"mpichv/internal/core"
	"mpichv/internal/netsim"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

func makeImage(t *testing.T, rank int, seq uint64) []byte {
	t.Helper()
	st := core.NewState(rank)
	st.PrepareSend(1, 0, []byte("logged payload"))
	proto, err := st.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	im := &Image{Rank: rank, Seq: seq, AppState: []byte("app state"), Proto: proto}
	b, err := im.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestImageRoundTrip(t *testing.T) {
	b := makeImage(t, 3, 7)
	im, err := DecodeImage(b)
	if err != nil {
		t.Fatal(err)
	}
	if im.Rank != 3 || im.Seq != 7 || string(im.AppState) != "app state" {
		t.Errorf("image = %+v", im)
	}
	sn, err := im.ProtoSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	st := core.Restore(sn)
	if st.SavedCount() != 1 || st.Clock() != 1 {
		t.Errorf("restored protocol state: saved=%d clock=%d", st.SavedCount(), st.Clock())
	}
}

func TestDecodeImageRejectsGarbage(t *testing.T) {
	if _, err := DecodeImage(bytes.Repeat([]byte{9}, 50)); err == nil {
		t.Error("garbage image decoded")
	}
}

func serverHarness(t *testing.T, fn func(s *vtime.Sim, srv *Server, client transport.Endpoint)) {
	t.Helper()
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		srv := NewServer(sim, fab.Attach(200, "cs"))
		srv.Start()
		client := fab.Attach(4, "client")
		fn(sim, srv, client)
	})
}

func recvKind(t *testing.T, ep transport.Endpoint, kind uint8) transport.Frame {
	t.Helper()
	for {
		f, ok := ep.Inbox().Recv()
		if !ok {
			t.Fatal("client inbox closed")
		}
		if f.Kind == kind {
			return f
		}
	}
}

func TestSaveAndFetch(t *testing.T) {
	img := makeImage(t, 4, 1)
	serverHarness(t, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, img))
		f := recvKind(t, client, wire.KCkptSaveAck)
		if seq, err := wire.DecodeU64(f.Data); err != nil || seq != 1 {
			t.Fatalf("ack seq = %d %v", seq, err)
		}
		if !srv.HasImage(4) {
			t.Fatal("server has no image for rank 4")
		}

		client.Send(200, wire.KCkptFetch, nil)
		f = recvKind(t, client, wire.KCkptImage)
		present, got, err := wire.DecodeCkptImage(f.Data)
		if err != nil || !present || !bytes.Equal(got, img) {
			t.Fatalf("fetch: present=%v err=%v equal=%v", present, err, bytes.Equal(got, img))
		}
	})
}

func TestFetchWithoutImage(t *testing.T) {
	serverHarness(t, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(200, wire.KCkptFetch, nil)
		f := recvKind(t, client, wire.KCkptImage)
		present, _, err := wire.DecodeCkptImage(f.Data)
		if err != nil || present {
			t.Fatalf("fetch on empty server: present=%v err=%v", present, err)
		}
	})
}

func TestNewerImageReplacesOlder(t *testing.T) {
	img1 := makeImage(t, 4, 1)
	img2 := makeImage(t, 4, 2)
	serverHarness(t, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, img1))
		recvKind(t, client, wire.KCkptSaveAck)
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(2, img2))
		recvKind(t, client, wire.KCkptSaveAck)

		client.Send(200, wire.KCkptFetch, nil)
		f := recvKind(t, client, wire.KCkptImage)
		_, got, _ := wire.DecodeCkptImage(f.Data)
		im, err := DecodeImage(got)
		if err != nil || im.Seq != 2 {
			t.Fatalf("latest image seq = %v err=%v", im, err)
		}
		if st := srv.Store.Stats(); st.Saves != 2 {
			t.Errorf("Saves = %d", st.Saves)
		}
	})
}

func TestStaleSaveIgnoredButAcked(t *testing.T) {
	// A save with an old seq (a retransmission, or a stale frame that a
	// chaotic network delayed past a newer save) must not regress the
	// stored image — but it is still acked, because the saver may be
	// retransmitting precisely because the first ack was lost.
	img1 := makeImage(t, 4, 1)
	img2 := makeImage(t, 4, 2)
	serverHarness(t, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(2, img2))
		recvKind(t, client, wire.KCkptSaveAck)
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, img1))
		f := recvKind(t, client, wire.KCkptSaveAck)
		if seq, _ := wire.DecodeU64(f.Data); seq != 1 {
			t.Fatalf("stale save not re-acked: seq = %d", seq)
		}
		client.Send(200, wire.KCkptFetch, nil)
		f = recvKind(t, client, wire.KCkptImage)
		_, got, _ := wire.DecodeCkptImage(f.Data)
		im, err := DecodeImage(got)
		if err != nil || im.Seq != 2 {
			t.Fatalf("stored image regressed: %v err=%v", im, err)
		}
		if st := srv.Store.Stats(); st.Saves != 1 || st.StaleRejects != 1 {
			t.Errorf("Saves=%d StaleRejects=%d, want 1 and 1", st.Saves, st.StaleRejects)
		}
	})
}

func TestDecodeImageRejectsTruncationAndBitFlips(t *testing.T) {
	b := makeImage(t, 3, 7)
	for cut := 0; cut < len(b); cut += 7 {
		if _, err := DecodeImage(b[:cut]); err == nil {
			t.Fatalf("image truncated to %d of %d bytes decoded", cut, len(b))
		}
	}
	flipped := append([]byte(nil), b...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := DecodeImage(flipped); err == nil {
		t.Error("bit-flipped image decoded")
	}
}

func TestServerRejectsDamagedSaveWithoutAck(t *testing.T) {
	// A save whose image fails integrity verification is dropped and
	// NOT acked: the daemon keeps retransmitting until an intact copy
	// lands, so the store never holds garbage.
	img := makeImage(t, 4, 1)
	serverHarness(t, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, img[:len(img)/2]))
		// Retransmission of the intact image.
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, img))
		f := recvKind(t, client, wire.KCkptSaveAck)
		if seq, _ := wire.DecodeU64(f.Data); seq != 1 {
			t.Fatalf("intact retransmission not acked: seq = %d", seq)
		}
		st := srv.Store.Stats()
		if st.Malformed != 1 || st.Saves != 1 {
			t.Errorf("Malformed=%d Saves=%d, want 1 and 1", st.Malformed, st.Saves)
		}
		got, _ := srv.Store.Get(4)
		if _, err := DecodeImage(got); err != nil {
			t.Errorf("stored image does not verify: %v", err)
		}
	})
}

func TestReplicaResyncPullsLatestImages(t *testing.T) {
	// A checkpoint replica respawned empty pulls its peers' latest
	// images and can then serve a restart fetch itself.
	img := makeImage(t, 4, 2)
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		a := NewServer(sim, fab.Attach(200, "cs-a"))
		a.Peers = []int{201}
		a.Start()
		client := fab.Attach(4, "client")
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(2, img))
		recvKind(t, client, wire.KCkptSaveAck)

		b := NewServer(sim, fab.Attach(201, "cs-b"))
		b.Peers = []int{200}
		b.Resync = true
		b.Start()
		sim.Sleep(50 * time.Millisecond)

		client.Send(201, wire.KCkptFetch, nil)
		f := recvKind(t, client, wire.KCkptImage)
		present, got, err := wire.DecodeCkptImage(f.Data)
		if err != nil || !present || !bytes.Equal(got, img) {
			t.Fatalf("resynced replica fetch: present=%v err=%v", present, err)
		}
		if st := b.Store.Stats(); st.SyncedIn != 1 {
			t.Errorf("SyncedIn = %d, want 1", st.SyncedIn)
		}
	})
}

func TestServersShareStore(t *testing.T) {
	// Two frontends over one store: an image saved through the first is
	// served by the second — the failover configuration.
	img := makeImage(t, 4, 1)
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		st := NewStore()
		NewServerWithStore(sim, fab.Attach(200, "cs-a"), st).Start()
		NewServerWithStore(sim, fab.Attach(201, "cs-b"), st).Start()
		client := fab.Attach(4, "client")
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, img))
		recvKind(t, client, wire.KCkptSaveAck)
		client.Send(201, wire.KCkptFetch, nil)
		f := recvKind(t, client, wire.KCkptImage)
		present, got, err := wire.DecodeCkptImage(f.Data)
		if err != nil || !present || !bytes.Equal(got, img) {
			t.Fatalf("backup fetch: present=%v err=%v", present, err)
		}
	})
}

func TestImagesKeyedPerRank(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		srv := NewServer(sim, fab.Attach(200, "cs"))
		srv.Start()
		c4 := fab.Attach(4, "c4")
		c5 := fab.Attach(5, "c5")
		c4.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, makeImage(t, 4, 1)))
		recvKind(t, c4, wire.KCkptSaveAck)
		if srv.HasImage(5) {
			t.Error("rank 5 should have no image")
		}
		c5.Send(200, wire.KCkptFetch, nil)
		f := recvKind(t, c5, wire.KCkptImage)
		if present, _, _ := wire.DecodeCkptImage(f.Data); present {
			t.Error("rank 5 fetched rank 4's image")
		}
	})
}

// chainImages builds an encoded base image at seq1, a delta at seq2
// taken against it, and the full image the delta must materialize to —
// the snapshots are built by hand so the SAVED split across the
// base/delta boundary is explicit.
func chainImages(rank int, seq1, seq2 uint64) (base, delta, full []byte) {
	sn1 := &core.Snapshot{
		Rank: rank, H: 12,
		HS: map[int]uint64{0: 2}, HR: map[int]uint64{1: 1},
		SeqTo: map[int]uint64{0: 2, 1: 1}, SeqIn: map[int]uint64{1: 3},
		Saved: []core.SavedMsg{
			{To: 0, Clock: 3, Seq: 1, Kind: 1, Data: []byte("one")},
			{To: 1, Clock: 5, Seq: 1, Kind: 1, Data: []byte("two")},
			{To: 0, Clock: 7, Seq: 2, Kind: 1, Data: []byte("three")},
		},
	}
	sn2 := &core.Snapshot{
		Rank: rank, H: 30,
		HS: map[int]uint64{0: 6, 1: 2}, HR: map[int]uint64{1: 4},
		SeqTo: map[int]uint64{0: 3, 1: 2}, SeqIn: map[int]uint64{1: 9},
		Saved: append(append([]core.SavedMsg(nil), sn1.Saved...),
			core.SavedMsg{To: 1, Clock: 9, Seq: 2, Kind: 1, Data: []byte("four")},
			core.SavedMsg{To: 0, Clock: 11, Seq: 3, Kind: 2, Data: []byte("five!")},
		),
	}
	enc := func(im *Image) []byte {
		b, _ := im.Encode()
		return b
	}
	base = enc(&Image{Rank: rank, Seq: seq1, AppState: []byte("app@1"),
		Proto: core.AppendSnapshot(nil, sn1)})
	delta = enc(&Image{Rank: rank, Seq: seq2, BaseSeq: seq1, AppState: []byte("app@2"),
		Proto: core.AppendSnapshotDelta(nil, sn2, sn1.SeqTo)})
	full = enc(&Image{Rank: rank, Seq: seq2, AppState: []byte("app@2"),
		Proto: core.AppendSnapshot(nil, sn2)})
	return base, delta, full
}

func TestDeltaMaterializesToFullImage(t *testing.T) {
	base, delta, full := chainImages(4, 1, 2)
	st := NewStore()
	if got := st.Accept(4, 1, base); got != Accepted {
		t.Fatalf("base: %v", got)
	}
	if got := st.Accept(4, 2, delta); got != Accepted {
		t.Fatalf("delta: %v", got)
	}
	img, ok := st.Get(4)
	if !ok || !bytes.Equal(img, full) {
		t.Error("materialized image differs from the monolithic full encoding")
	}
	s := st.Stats()
	if s.DeltaSaves != 1 || s.ChainBreaks != 0 {
		t.Errorf("DeltaSaves=%d ChainBreaks=%d, want 1, 0", s.DeltaSaves, s.ChainBreaks)
	}
	// The delta's base stays resident (another in-flight delta may name
	// it); a full image at seq 3 supersedes the whole chain.
	full3 := makeImage(t, 4, 3)
	if got := st.Accept(4, 3, full3); got != Accepted {
		t.Fatalf("full@3: %v", got)
	}
	if s := st.Stats(); s.ChainCompactions != 2 {
		t.Errorf("ChainCompactions = %d, want 2 (seqs 1 and 2)", s.ChainCompactions)
	}
}

func TestDeltaChainBreakHealsViaSync(t *testing.T) {
	// A replica respawned empty receives a delta whose base it never
	// held: the delta must be refused unacked (ChainBreak) and must
	// succeed once anti-entropy delivers the base.
	base, delta, full := chainImages(4, 1, 2)
	st := NewStore()
	if got := st.Accept(4, 2, delta); got != ChainBreak {
		t.Fatalf("delta without base: %v, want ChainBreak", got)
	}
	if st.Has(4) {
		t.Fatal("broken chain stored an image")
	}
	if st.MergeEntries([]wire.CkptEntry{{Rank: 4, Seq: 1, Image: base}}) != 1 {
		t.Fatal("sync entry not merged")
	}
	if got := st.Accept(4, 2, delta); got != Accepted {
		t.Fatalf("delta after sync: %v", got)
	}
	img, _ := st.Get(4)
	if !bytes.Equal(img, full) {
		t.Error("healed chain materialized different bytes")
	}
	if s := st.Stats(); s.ChainBreaks != 1 {
		t.Errorf("ChainBreaks = %d, want 1", s.ChainBreaks)
	}
}

// putChunks slices img at cs and feeds the chunks to the store in a
// deterministic scrambled order (odd indices first), returning the
// verdict of the completing chunk.
func putChunks(st *Store, rank int, seq uint64, img []byte, cs int) (ack, full, chainBreak bool) {
	n := (len(img) + cs - 1) / cs
	order := make([]int, 0, n)
	for i := 1; i < n; i += 2 {
		order = append(order, i)
	}
	for i := 0; i < n; i += 2 {
		order = append(order, i)
	}
	for _, i := range order {
		lo := i * cs
		hi := min(lo+cs, len(img))
		ack, full, chainBreak = st.PutChunk(rank, seq, uint32(i), uint32(n), img[lo:hi])
	}
	return ack, full, chainBreak
}

func TestChunkedAssemblyByteIdentityAnyChunkSize(t *testing.T) {
	// The determinism pin of the chunked transfer: whatever the chunk
	// size and arrival order, the assembled image — and therefore the
	// core.Snapshot a restart decodes from it — is byte-identical to the
	// monolithic save.
	img := makeImage(t, 4, 1)
	for _, cs := range []int{1, 7, 997, len(img) - 1, len(img), len(img) + 100} {
		st := NewStore()
		ack, full, chainBreak := putChunks(st, 4, 1, img, cs)
		if ack || !full || chainBreak {
			t.Fatalf("cs=%d: completing chunk = (ack=%v full=%v break=%v), want full ack", cs, ack, full, chainBreak)
		}
		got, ok := st.Get(4)
		if !ok || !bytes.Equal(got, img) {
			t.Errorf("cs=%d: assembled image differs from monolithic bytes", cs)
		}
	}
}

func TestChunkedDeltaMatchesMonolithicDelta(t *testing.T) {
	base, delta, full := chainImages(4, 1, 2)
	st := NewStore()
	st.Accept(4, 1, base)
	if _, fullAck, _ := putChunks(st, 4, 2, delta, 11); !fullAck {
		t.Fatal("chunked delta did not complete")
	}
	img, _ := st.Get(4)
	if !bytes.Equal(img, full) {
		t.Error("chunked delta materialized different bytes than the monolithic path")
	}
}

func TestPartialAssemblyNeverClaimsImage(t *testing.T) {
	// A replica that dies with a partial chain must never be counted as
	// holding the image. Full-image acks are what the daemon counts;
	// chunk acks are retransmit suppression only — so the respawned
	// store may chunk-ack whatever lands, as long as it never full-acks
	// an image it cannot serve.
	img := makeImage(t, 4, 1)
	const cs = 64
	n := (len(img) + cs - 1) / cs
	if n < 3 {
		t.Fatalf("image too small for the scenario: %d chunks", n)
	}
	st := NewStore()
	for i := 0; i < n-1; i++ {
		ack, full, _ := st.PutChunk(4, 1, uint32(i), uint32(n), img[i*cs:min((i+1)*cs, len(img))])
		if !ack || full {
			t.Fatalf("chunk %d: ack=%v full=%v, want plain chunk ack", i, ack, full)
		}
	}
	if st.Has(4) || st.Manifest(4, cs).Present {
		t.Fatal("store claims an image from a partial assembly")
	}

	// The replica dies; its respawn comes back empty. The daemon,
	// remembering the old chunk acks, retransmits only the final chunk.
	respawned := NewStore()
	ack, full, _ := respawned.PutChunk(4, 1, uint32(n-1), uint32(n), img[(n-1)*cs:])
	if full {
		t.Fatal("respawned replica full-acked an image it assembled 1 chunk of")
	}
	if !ack {
		t.Error("lone chunk should still be chunk-acked (suppress its retransmit)")
	}
	if respawned.Has(4) {
		t.Fatal("respawned store claims an image")
	}
}

func TestChunkedChainBreakKeepsPartialForRetry(t *testing.T) {
	// A delta assembled on a store missing its base is not acked and the
	// partial is kept: once anti-entropy delivers the base, the daemon's
	// retransmission of any chunk re-runs acceptance.
	base, delta, full := chainImages(4, 1, 2)
	st := NewStore()
	ack, fullAck, chainBreak := putChunks(st, 4, 2, delta, 13)
	if ack || fullAck || !chainBreak {
		t.Fatalf("completing chunk on broken chain = (ack=%v full=%v break=%v), want break only", ack, fullAck, chainBreak)
	}
	st.MergeEntries([]wire.CkptEntry{{Rank: 4, Seq: 1, Image: base}})
	// The daemon retransmits an unacked chunk — a duplicate for the kept
	// partial — which re-triggers assembly against the synced base.
	n := (len(delta) + 13 - 1) / 13
	ack, fullAck, chainBreak = st.PutChunk(4, 2, 0, uint32(n), delta[:13])
	if ack || !fullAck || chainBreak {
		t.Fatalf("retry after sync = (ack=%v full=%v break=%v), want full ack", ack, fullAck, chainBreak)
	}
	img, _ := st.Get(4)
	if !bytes.Equal(img, full) {
		t.Error("healed chunked chain materialized different bytes")
	}
}

func TestManifestAndChunkAtServeVerifiableChunks(t *testing.T) {
	img := makeImage(t, 4, 3)
	st := NewStore()
	st.Accept(4, 3, img)
	const cs = 100
	m := st.Manifest(4, cs)
	if !m.Present || m.Seq != 3 || m.Size != uint64(len(img)) {
		t.Fatalf("manifest = %+v", m)
	}
	if m.ImageCRC != crc32.ChecksumIEEE(img) {
		t.Error("manifest whole-image CRC mismatch")
	}
	var rebuilt []byte
	for i := 0; i < m.Chunks(); i++ {
		frame, ok := st.ChunkAt(4, 3, uint32(i), cs)
		if !ok {
			t.Fatalf("chunk %d not served", i)
		}
		seq, idx, count, body, err := wire.DecodeCkptChunk(frame)
		if err != nil || seq != 3 || idx != uint32(i) || count != uint32(m.Chunks()) {
			t.Fatalf("chunk %d frame: seq=%d idx=%d count=%d err=%v", i, seq, idx, count, err)
		}
		if crc32.ChecksumIEEE(body) != m.ChunkCRCs[i] {
			t.Fatalf("chunk %d CRC differs from manifest", i)
		}
		rebuilt = append(rebuilt, body...)
	}
	if !bytes.Equal(rebuilt, img) {
		t.Error("chunks do not reassemble to the stored image")
	}
	// A fetch for a seq the store has moved past serves nothing — the
	// fetcher must re-gather manifests instead of mixing images.
	if _, ok := st.ChunkAt(4, 2, 0, cs); ok {
		t.Error("ChunkAt served a chunk for an absent seq")
	}
}

func TestServerChunkedSaveFullAcksOnlyOnCompletion(t *testing.T) {
	img := makeImage(t, 4, 1)
	const cs = 48
	n := (len(img) + cs - 1) / cs
	serverHarness(t, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		for i := 0; i < n; i++ {
			lo := i * cs
			hi := min(lo+cs, len(img))
			client.Send(200, wire.KCkptChunk, wire.AppendCkptChunk(nil, 1, uint32(i), uint32(n), img[lo:hi]))
			if i < n-1 {
				f := recvKind(t, client, wire.KCkptChunkAck)
				seq, idx, err := wire.DecodeCkptChunkAck(f.Data)
				if err != nil || seq != 1 || idx != uint32(i) {
					t.Fatalf("chunk ack %d: seq=%d idx=%d err=%v", i, seq, idx, err)
				}
			}
		}
		// The completing chunk is answered with a FULL ack — the only
		// ack kind the daemon counts toward the write quorum.
		f := recvKind(t, client, wire.KCkptSaveAck)
		if seq, err := wire.DecodeU64(f.Data); err != nil || seq != 1 {
			t.Fatalf("full ack: seq=%d err=%v", seq, err)
		}
		if !srv.HasImage(4) {
			t.Fatal("server holds no image after chunked save")
		}
		// A retransmitted chunk after completion (the full ack may have
		// been lost) is answered with another full ack, not a chunk ack.
		client.Send(200, wire.KCkptChunk, wire.AppendCkptChunk(nil, 1, 0, uint32(n), img[:cs]))
		f = recvKind(t, client, wire.KCkptSaveAck)
		if seq, _ := wire.DecodeU64(f.Data); seq != 1 {
			t.Fatalf("stale chunk re-ack seq = %d", seq)
		}
	})
}

func TestServerDamagedChunkNotAcked(t *testing.T) {
	img := makeImage(t, 4, 1)
	serverHarness(t, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		frame := wire.AppendCkptChunk(nil, 1, 0, 2, img[:50])
		frame[len(frame)-1] ^= 0x10
		client.Send(200, wire.KCkptChunk, frame)
		// An intact chunk after the damaged one: its ack proves the
		// server processed (and silently dropped) the damaged frame.
		client.Send(200, wire.KCkptChunk, wire.AppendCkptChunk(nil, 1, 1, 2, img[50:100]))
		f := recvKind(t, client, wire.KCkptChunkAck)
		if _, idx, _ := wire.DecodeCkptChunkAck(f.Data); idx != 1 {
			t.Fatalf("acked idx = %d, want 1 (the intact chunk)", idx)
		}
		if st := srv.Store.Stats(); st.Malformed != 1 {
			t.Errorf("Malformed = %d, want 1", st.Malformed)
		}
	})
}

func TestAppendImageZeroAlloc(t *testing.T) {
	img := makeImage(t, 4, 1)
	im, err := DecodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, ImageSize(im))
	if allocs := testing.AllocsPerRun(200, func() { AppendImage(dst[:0], im) }); allocs != 0 {
		t.Errorf("AppendImage: %.1f allocs/op, want 0", allocs)
	}
}
