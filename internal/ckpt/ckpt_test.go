package ckpt

import (
	"bytes"
	"testing"
	"time"

	"mpichv/internal/core"
	"mpichv/internal/netsim"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
	"mpichv/internal/wire"
)

func makeImage(t *testing.T, rank int, seq uint64) []byte {
	t.Helper()
	st := core.NewState(rank)
	st.PrepareSend(1, 0, []byte("logged payload"))
	proto, err := st.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	im := &Image{Rank: rank, Seq: seq, AppState: []byte("app state"), Proto: proto}
	b, err := im.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestImageRoundTrip(t *testing.T) {
	b := makeImage(t, 3, 7)
	im, err := DecodeImage(b)
	if err != nil {
		t.Fatal(err)
	}
	if im.Rank != 3 || im.Seq != 7 || string(im.AppState) != "app state" {
		t.Errorf("image = %+v", im)
	}
	sn, err := im.ProtoSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	st := core.Restore(sn)
	if st.SavedCount() != 1 || st.Clock() != 1 {
		t.Errorf("restored protocol state: saved=%d clock=%d", st.SavedCount(), st.Clock())
	}
}

func TestDecodeImageRejectsGarbage(t *testing.T) {
	if _, err := DecodeImage(bytes.Repeat([]byte{9}, 50)); err == nil {
		t.Error("garbage image decoded")
	}
}

func serverHarness(t *testing.T, fn func(s *vtime.Sim, srv *Server, client transport.Endpoint)) {
	t.Helper()
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		srv := NewServer(sim, fab.Attach(200, "cs"))
		srv.Start()
		client := fab.Attach(4, "client")
		fn(sim, srv, client)
	})
}

func recvKind(t *testing.T, ep transport.Endpoint, kind uint8) transport.Frame {
	t.Helper()
	for {
		f, ok := ep.Inbox().Recv()
		if !ok {
			t.Fatal("client inbox closed")
		}
		if f.Kind == kind {
			return f
		}
	}
}

func TestSaveAndFetch(t *testing.T) {
	img := makeImage(t, 4, 1)
	serverHarness(t, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, img))
		f := recvKind(t, client, wire.KCkptSaveAck)
		if seq, err := wire.DecodeU64(f.Data); err != nil || seq != 1 {
			t.Fatalf("ack seq = %d %v", seq, err)
		}
		if !srv.HasImage(4) {
			t.Fatal("server has no image for rank 4")
		}

		client.Send(200, wire.KCkptFetch, nil)
		f = recvKind(t, client, wire.KCkptImage)
		present, got, err := wire.DecodeCkptImage(f.Data)
		if err != nil || !present || !bytes.Equal(got, img) {
			t.Fatalf("fetch: present=%v err=%v equal=%v", present, err, bytes.Equal(got, img))
		}
	})
}

func TestFetchWithoutImage(t *testing.T) {
	serverHarness(t, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(200, wire.KCkptFetch, nil)
		f := recvKind(t, client, wire.KCkptImage)
		present, _, err := wire.DecodeCkptImage(f.Data)
		if err != nil || present {
			t.Fatalf("fetch on empty server: present=%v err=%v", present, err)
		}
	})
}

func TestNewerImageReplacesOlder(t *testing.T) {
	img1 := makeImage(t, 4, 1)
	img2 := makeImage(t, 4, 2)
	serverHarness(t, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, img1))
		recvKind(t, client, wire.KCkptSaveAck)
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(2, img2))
		recvKind(t, client, wire.KCkptSaveAck)

		client.Send(200, wire.KCkptFetch, nil)
		f := recvKind(t, client, wire.KCkptImage)
		_, got, _ := wire.DecodeCkptImage(f.Data)
		im, err := DecodeImage(got)
		if err != nil || im.Seq != 2 {
			t.Fatalf("latest image seq = %v err=%v", im, err)
		}
		if st := srv.Store.Stats(); st.Saves != 2 {
			t.Errorf("Saves = %d", st.Saves)
		}
	})
}

func TestStaleSaveIgnoredButAcked(t *testing.T) {
	// A save with an old seq (a retransmission, or a stale frame that a
	// chaotic network delayed past a newer save) must not regress the
	// stored image — but it is still acked, because the saver may be
	// retransmitting precisely because the first ack was lost.
	img1 := makeImage(t, 4, 1)
	img2 := makeImage(t, 4, 2)
	serverHarness(t, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(2, img2))
		recvKind(t, client, wire.KCkptSaveAck)
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, img1))
		f := recvKind(t, client, wire.KCkptSaveAck)
		if seq, _ := wire.DecodeU64(f.Data); seq != 1 {
			t.Fatalf("stale save not re-acked: seq = %d", seq)
		}
		client.Send(200, wire.KCkptFetch, nil)
		f = recvKind(t, client, wire.KCkptImage)
		_, got, _ := wire.DecodeCkptImage(f.Data)
		im, err := DecodeImage(got)
		if err != nil || im.Seq != 2 {
			t.Fatalf("stored image regressed: %v err=%v", im, err)
		}
		if st := srv.Store.Stats(); st.Saves != 1 || st.StaleRejects != 1 {
			t.Errorf("Saves=%d StaleRejects=%d, want 1 and 1", st.Saves, st.StaleRejects)
		}
	})
}

func TestDecodeImageRejectsTruncationAndBitFlips(t *testing.T) {
	b := makeImage(t, 3, 7)
	for cut := 0; cut < len(b); cut += 7 {
		if _, err := DecodeImage(b[:cut]); err == nil {
			t.Fatalf("image truncated to %d of %d bytes decoded", cut, len(b))
		}
	}
	flipped := append([]byte(nil), b...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := DecodeImage(flipped); err == nil {
		t.Error("bit-flipped image decoded")
	}
}

func TestServerRejectsDamagedSaveWithoutAck(t *testing.T) {
	// A save whose image fails integrity verification is dropped and
	// NOT acked: the daemon keeps retransmitting until an intact copy
	// lands, so the store never holds garbage.
	img := makeImage(t, 4, 1)
	serverHarness(t, func(s *vtime.Sim, srv *Server, client transport.Endpoint) {
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, img[:len(img)/2]))
		// Retransmission of the intact image.
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, img))
		f := recvKind(t, client, wire.KCkptSaveAck)
		if seq, _ := wire.DecodeU64(f.Data); seq != 1 {
			t.Fatalf("intact retransmission not acked: seq = %d", seq)
		}
		st := srv.Store.Stats()
		if st.Malformed != 1 || st.Saves != 1 {
			t.Errorf("Malformed=%d Saves=%d, want 1 and 1", st.Malformed, st.Saves)
		}
		got, _ := srv.Store.Get(4)
		if _, err := DecodeImage(got); err != nil {
			t.Errorf("stored image does not verify: %v", err)
		}
	})
}

func TestReplicaResyncPullsLatestImages(t *testing.T) {
	// A checkpoint replica respawned empty pulls its peers' latest
	// images and can then serve a restart fetch itself.
	img := makeImage(t, 4, 2)
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		a := NewServer(sim, fab.Attach(200, "cs-a"))
		a.Peers = []int{201}
		a.Start()
		client := fab.Attach(4, "client")
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(2, img))
		recvKind(t, client, wire.KCkptSaveAck)

		b := NewServer(sim, fab.Attach(201, "cs-b"))
		b.Peers = []int{200}
		b.Resync = true
		b.Start()
		sim.Sleep(50 * time.Millisecond)

		client.Send(201, wire.KCkptFetch, nil)
		f := recvKind(t, client, wire.KCkptImage)
		present, got, err := wire.DecodeCkptImage(f.Data)
		if err != nil || !present || !bytes.Equal(got, img) {
			t.Fatalf("resynced replica fetch: present=%v err=%v", present, err)
		}
		if st := b.Store.Stats(); st.SyncedIn != 1 {
			t.Errorf("SyncedIn = %d, want 1", st.SyncedIn)
		}
	})
}

func TestServersShareStore(t *testing.T) {
	// Two frontends over one store: an image saved through the first is
	// served by the second — the failover configuration.
	img := makeImage(t, 4, 1)
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		st := NewStore()
		NewServerWithStore(sim, fab.Attach(200, "cs-a"), st).Start()
		NewServerWithStore(sim, fab.Attach(201, "cs-b"), st).Start()
		client := fab.Attach(4, "client")
		client.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, img))
		recvKind(t, client, wire.KCkptSaveAck)
		client.Send(201, wire.KCkptFetch, nil)
		f := recvKind(t, client, wire.KCkptImage)
		present, got, err := wire.DecodeCkptImage(f.Data)
		if err != nil || !present || !bytes.Equal(got, img) {
			t.Fatalf("backup fetch: present=%v err=%v", present, err)
		}
	})
}

func TestImagesKeyedPerRank(t *testing.T) {
	sim := vtime.NewSim()
	sim.Run(func() {
		fab := transport.NewSimFabric(sim, netsim.New(sim, netsim.Params2003()), nil)
		srv := NewServer(sim, fab.Attach(200, "cs"))
		srv.Start()
		c4 := fab.Attach(4, "c4")
		c5 := fab.Attach(5, "c5")
		c4.Send(200, wire.KCkptSave, wire.EncodeCkptSave(1, makeImage(t, 4, 1)))
		recvKind(t, c4, wire.KCkptSaveAck)
		if srv.HasImage(5) {
			t.Error("rank 5 should have no image")
		}
		c5.Send(200, wire.KCkptFetch, nil)
		f := recvKind(t, c5, wire.KCkptImage)
		if present, _, _ := wire.DecodeCkptImage(f.Data); present {
			t.Error("rank 5 fetched rank 4's image")
		}
	})
}
