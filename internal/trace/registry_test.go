package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(3)
	r.Counter("x").Add(4)
	if c.Value() != 7 {
		t.Errorf("counter = %d", c.Value())
	}
	g := r.Gauge("y")
	g.Set(1.5)
	r.Gauge("y").Set(2.5)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %g", g.Value())
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{1, 2, 4, 8, 1000} {
		h.Observe(v)
	}
	s := h.Stats()
	if s.Count != 5 || s.Sum != 1015 || s.Min != 1 || s.Max != 1000 {
		t.Errorf("stats: %+v", s)
	}
	if s.Mean != 203 {
		t.Errorf("mean = %g", s.Mean)
	}
	// Quantiles are bucket upper bounds: rank ceil(.5*5)=3 lands in the
	// bucket of 4, rank ceil(.99*5)=5 in the bucket of 1000 (2^10).
	if s.P50 != 4 {
		t.Errorf("p50 = %g", s.P50)
	}
	if s.P99 != 1024 {
		t.Errorf("p99 = %g", s.P99)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if s := h.Stats(); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty stats: %+v", s)
	}
	h.Observe(-5) // clamped to zero
	if s := h.Stats(); s.Min != 0 || s.Max != 0 || s.Count != 1 {
		t.Errorf("clamped stats: %+v", s)
	}
	// A sample beyond 2^63 still lands in the last bucket.
	h.Observe(1e300)
	if s := h.Stats(); s.Count != 2 || s.Max != 1e300 {
		t.Errorf("huge stats: %+v", s)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {1, 0}, {1.5, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1e300, 63}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestAddCounters(t *testing.T) {
	r := NewRegistry()
	r.AddCounters("el", map[string]int64{"logged": 10, "acks": 5})
	r.AddCounters("el", map[string]int64{"logged": 2})
	if v := r.Counter("el.logged").Value(); v != 12 {
		t.Errorf("el.logged = %d", v)
	}
	if v := r.Counter("el.acks").Value(); v != 5 {
		t.Errorf("el.acks = %d", v)
	}
}

func TestSnapshotAndFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(7)
	s := r.Snapshot()
	if s.Counters["a.count"] != 1 || s.Counters["b.count"] != 2 {
		t.Errorf("counters: %v", s.Counters)
	}
	if s.Gauges["g"] != 3 {
		t.Errorf("gauges: %v", s.Gauges)
	}
	if s.Histograms["h"].Count != 1 {
		t.Errorf("histograms: %v", s.Histograms)
	}
	out := s.Format()
	if !strings.Contains(out, "counter a.count 1") ||
		!strings.Contains(out, "gauge g 3") ||
		!strings.Contains(out, "hist h count=1") {
		t.Errorf("format:\n%s", out)
	}
	// Sorted render: a.count before b.count.
	if strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Error("counters not sorted")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c").Add(1)
				r.Gauge("g").Set(float64(j))
				r.Histogram("h").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c").Value(); v != 800 {
		t.Errorf("counter = %d, want 800", v)
	}
	if s := r.Histogram("h").Stats(); s.Count != 800 {
		t.Errorf("histogram count = %d, want 800", s.Count)
	}
}
