package trace

import (
	"strings"
	"testing"
	"time"
)

// mkTrace builds a trace from pre-ordered events (callers assign
// ascending timestamps themselves).
func mkTrace(evs ...Ev) *Trace { return &Trace{Evs: evs} }

func TestAuditHBNilAndEmpty(t *testing.T) {
	if rep := AuditHB(nil); !rep.OK() || rep.Events != 0 {
		t.Errorf("nil trace: %+v", rep)
	}
	if rep := AuditHB(&Trace{}); !rep.OK() {
		t.Errorf("empty trace: %+v", rep)
	}
}

func TestAuditHBCleanRun(t *testing.T) {
	// Rank 1 delivers from rank 0, logs the determinant, then sends:
	// the textbook §4.3 sequence.
	send := PackSpan(0, 1)
	det := PackSpan(1, 5)
	rep := AuditHB(mkTrace(
		Ev{T: 1, Kind: EvSend, Rank: 0, Span: send, A: 1, B: 64},
		Ev{T: 2, Kind: EvRecvWire, Rank: 1, Span: send, A: 0, B: 64},
		Ev{T: 3, Kind: EvDeliver, Rank: 1, Span: det, Parent: send, A: 1, B: 1},
		Ev{T: 4, Kind: EvDetSubmit, Rank: 1, A: 1, B: 1},
		Ev{T: 5, Kind: EvDetDurable, Rank: 1, Span: det, A: 1},
		Ev{T: 6, Kind: EvSend, Rank: 1, Span: PackSpan(1, 6), A: 0, B: 64},
	))
	if !rep.OK() {
		t.Fatalf("clean run flagged: %s", rep.Summary())
	}
	if rep.Ranks != 2 || rep.Sends != 2 || rep.Deliveries != 1 || rep.Durables != 1 {
		t.Errorf("counts: %+v", rep)
	}
	if !strings.Contains(rep.Summary(), "2 sends") {
		t.Errorf("summary: %s", rep.Summary())
	}
}

func TestAuditHBEarlySend(t *testing.T) {
	// The injected NoSendGating bug: payload leaves while the delivery's
	// determinant is still pending at the event loggers.
	det := PackSpan(1, 5)
	rep := AuditHB(mkTrace(
		Ev{T: 1, Kind: EvDeliver, Rank: 1, Span: det, A: 1, B: 1},
		Ev{T: 2, Kind: EvSend, Rank: 1, Span: PackSpan(1, 6), A: 0, B: 8},
		Ev{T: 3, Kind: EvDetDurable, Rank: 1, Span: det, A: 1},
	))
	if rep.OK() || len(rep.EarlySends) != 1 {
		t.Fatalf("early send not caught: %s", rep.Summary())
	}
	if !strings.Contains(rep.EarlySends[0], "recv-clock 5") {
		t.Errorf("witness missing: %s", rep.EarlySends[0])
	}
	if !strings.Contains(rep.Summary(), "early sends (1)") {
		t.Errorf("summary: %s", rep.Summary())
	}
}

func TestAuditHBResendExempt(t *testing.T) {
	// A retransmission during a peer's RESTART handshake may overlap new
	// pending determinants: its original send already passed the gate.
	det := PackSpan(1, 5)
	rep := AuditHB(mkTrace(
		Ev{T: 1, Kind: EvDeliver, Rank: 1, Span: det, A: 1, B: 1},
		Ev{T: 2, Kind: EvResend, Rank: 1, Span: PackSpan(1, 2), A: 0, B: 8},
		Ev{T: 3, Kind: EvDetDurable, Rank: 1, Span: det, A: 1},
	))
	if !rep.OK() {
		t.Errorf("resend flagged as early send: %s", rep.Summary())
	}
}

func TestAuditHBUngatedDeliveryExempt(t *testing.T) {
	// B=0 on a delivery means the run has no event loggers: the
	// determinant never joins the WAITLOGGED gate.
	rep := AuditHB(mkTrace(
		Ev{T: 1, Kind: EvDeliver, Rank: 1, Span: PackSpan(1, 5), A: 1, B: 0},
		Ev{T: 2, Kind: EvSend, Rank: 1, Span: PackSpan(1, 6), A: 0, B: 8},
	))
	if !rep.OK() {
		t.Errorf("ungated delivery joined the gate: %s", rep.Summary())
	}
}

func TestAuditHBReplayOrder(t *testing.T) {
	s1, s2 := PackSpan(1, 5), PackSpan(1, 9)
	commits := []Ev{
		{T: 1, Kind: EvDeliver, Rank: 1, Span: s1, A: 1, B: 1},
		{T: 2, Kind: EvDetDurable, Rank: 1, Span: s1},
		{T: 3, Kind: EvDeliver, Rank: 1, Span: s2, A: 2, B: 1},
		{T: 4, Kind: EvDetDurable, Rank: 1, Span: s2},
		{T: 5, Kind: EvRestartBegin, Rank: 1, A: 1},
	}
	// In-order replay: green.
	rep := AuditHB(mkTrace(append(commits,
		Ev{T: 6, Kind: EvReplay, Rank: 1, Span: s1, A: 0, B: 1},
		Ev{T: 7, Kind: EvReplay, Rank: 1, Span: s2, A: 0, B: 2},
		Ev{T: 8, Kind: EvRestartEnd, Rank: 1, A: 1, B: 100},
	)...))
	if !rep.OK() || rep.Replays != 2 {
		t.Fatalf("ordered replay flagged: %s", rep.Summary())
	}
	// Reversed replay: receiver-clock order broken.
	rep = AuditHB(mkTrace(append(commits,
		Ev{T: 6, Kind: EvReplay, Rank: 1, Span: s2, A: 0, B: 2},
		Ev{T: 7, Kind: EvReplay, Rank: 1, Span: s1, A: 0, B: 1},
	)...))
	if rep.OK() || len(rep.ReplayViolations) != 1 {
		t.Fatalf("replay inversion not caught: %s", rep.Summary())
	}
	if !strings.Contains(rep.ReplayViolations[0], "replayed recv-clock 5 after 9") {
		t.Errorf("violation text: %s", rep.ReplayViolations[0])
	}
}

func TestAuditHBReplayWithoutCommit(t *testing.T) {
	rep := AuditHB(mkTrace(
		Ev{T: 1, Kind: EvRestartBegin, Rank: 1, A: 1},
		Ev{T: 2, Kind: EvReplay, Rank: 1, Span: PackSpan(1, 5), A: 0, B: 1},
	))
	if rep.OK() || len(rep.ReplayViolations) != 1 {
		t.Fatalf("phantom replay not caught: %s", rep.Summary())
	}
	if !strings.Contains(rep.ReplayViolations[0], "no recorded original commit") {
		t.Errorf("violation text: %s", rep.ReplayViolations[0])
	}
}

func TestAuditHBReplayCursorResetsPerIncarnation(t *testing.T) {
	// A second crash replays the same prefix again: each incarnation's
	// cursor starts fresh, so the repeat is legal.
	s1 := PackSpan(1, 5)
	rep := AuditHB(mkTrace(
		Ev{T: 1, Kind: EvDeliver, Rank: 1, Span: s1, A: 1, B: 1},
		Ev{T: 2, Kind: EvDetDurable, Rank: 1, Span: s1},
		Ev{T: 3, Kind: EvRestartBegin, Rank: 1, A: 1},
		Ev{T: 4, Kind: EvReplay, Rank: 1, Span: s1, A: 0, B: 1},
		Ev{T: 5, Kind: EvRestartBegin, Rank: 1, A: 2},
		Ev{T: 6, Kind: EvReplay, Rank: 1, Span: s1, A: 0, B: 1},
	))
	if !rep.OK() {
		t.Errorf("cross-incarnation replay repeat flagged: %s", rep.Summary())
	}
}

func TestAuditHBRestartClearsPending(t *testing.T) {
	// Determinants pending at crash time die with the incarnation; a
	// send after recovery must not be charged for them.
	det := PackSpan(1, 5)
	rep := AuditHB(mkTrace(
		Ev{T: 1, Kind: EvDeliver, Rank: 1, Span: det, A: 1, B: 1},
		Ev{T: 2, Kind: EvRestartBegin, Rank: 1, A: 1},
		Ev{T: 3, Kind: EvRestartEnd, Rank: 1, A: 1, B: 50},
		Ev{T: 4, Kind: EvSend, Rank: 1, Span: PackSpan(1, 6), A: 0, B: 8},
	))
	if !rep.OK() {
		t.Errorf("post-restart send charged for dead determinants: %s", rep.Summary())
	}
}

func TestAuditHBGCInvariant(t *testing.T) {
	// Rank 2 announces (via KCkptNote) that deliveries from rank 0 up to
	// clock 10 are checkpoint-covered; rank 0 may then reclaim up to 10
	// but not beyond.
	green := AuditHB(mkTrace(
		Ev{T: 1, Kind: EvGCNote, Rank: 2, A: 0, B: 10},
		Ev{T: 2, Kind: EvGCApply, Rank: 0, A: 2, B: 10},
	))
	if !green.OK() {
		t.Fatalf("covered GC flagged: %s", green.Summary())
	}
	red := AuditHB(mkTrace(
		Ev{T: 1, Kind: EvGCNote, Rank: 2, A: 0, B: 10},
		Ev{T: 2, Kind: EvGCApply, Rank: 0, A: 2, B: 11},
	))
	if red.OK() || len(red.GCViolations) != 1 {
		t.Fatalf("over-eager GC not caught: %s", red.Summary())
	}
	if !strings.Contains(red.GCViolations[0], "peer only announced 10") {
		t.Errorf("violation text: %s", red.GCViolations[0])
	}
	// GC with no note at all.
	bare := AuditHB(mkTrace(Ev{T: 1, Kind: EvGCApply, Rank: 0, A: 2, B: 1}))
	if bare.OK() {
		t.Error("noteless GC not caught")
	}
}

func TestAuditHBIncompleteSuppression(t *testing.T) {
	// A wrapped ring may have lost the durability records; the auditor
	// must not claim violations it cannot anchor, but must say so.
	det := PackSpan(1, 5)
	rep := AuditHB(&Trace{
		Dropped: 3,
		Evs: []Ev{
			{T: 1, Kind: EvDeliver, Rank: 1, Span: det, A: 1, B: 1},
			{T: 2, Kind: EvSend, Rank: 1, Span: PackSpan(1, 6), A: 0, B: 8},
			{T: 3, Kind: EvGCApply, Rank: 0, A: 2, B: 99},
			{T: 4, Kind: EvReplay, Rank: 1, Span: PackSpan(1, 7), A: 0, B: 1},
		},
	})
	if !rep.Incomplete {
		t.Fatal("dropped events not marked incomplete")
	}
	if len(rep.EarlySends) != 0 || len(rep.GCViolations) != 0 {
		t.Errorf("incomplete trace produced unanchorable violations: %s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "INCOMPLETE") {
		t.Errorf("summary hides incompleteness: %s", rep.Summary())
	}
}

func TestAuditHBSummaryTruncates(t *testing.T) {
	evs := make([]Ev, 0, 24)
	det := PackSpan(1, 5)
	evs = append(evs, Ev{T: 1, Kind: EvDeliver, Rank: 1, Span: det, A: 1, B: 1})
	for i := 0; i < 12; i++ {
		evs = append(evs, Ev{T: time.Duration(2 + i), Kind: EvSend, Rank: 1, Span: PackSpan(1, uint64(6 + i)), A: 0, B: 8})
	}
	rep := AuditHB(mkTrace(evs...))
	if len(rep.EarlySends) != 12 {
		t.Fatalf("early sends = %d", len(rep.EarlySends))
	}
	if !strings.Contains(rep.Summary(), "... 4 more") {
		t.Errorf("summary not truncated:\n%s", rep.Summary())
	}
}

func TestExtractCriticalPath(t *testing.T) {
	st0 := New()
	st0.Add(Compute, 10*time.Millisecond)
	st0.Add("Send", 6*time.Millisecond)
	st1 := New()
	st1.Add(Compute, 2*time.Millisecond)
	st1.Add("Recv", 3*time.Millisecond)
	tr := mkTrace(
		Ev{T: 1, Kind: EvWaitLogged, Rank: 0, A: uint64(2 * time.Millisecond)},
		Ev{T: 2, Kind: EvRestartEnd, Rank: 0, A: 1, B: uint64(1 * time.Millisecond)},
		Ev{T: 3, Kind: EvWaitLogged, Rank: 1, A: uint64(500 * time.Microsecond)},
		// Out-of-range rank must be ignored, not panic.
		Ev{T: 4, Kind: EvWaitLogged, Rank: 9, A: 1},
	)
	rows := ExtractCriticalPath(tr, []*Stats{st0, st1})
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	r0 := rows[0]
	if r0.Compute != 10*time.Millisecond || r0.Comm != 6*time.Millisecond ||
		r0.ELWait != 2*time.Millisecond || r0.Recovery != time.Millisecond ||
		r0.Transfer != 3*time.Millisecond {
		t.Errorf("rank 0 row: %+v", r0)
	}
	if r0.Total() != 16*time.Millisecond {
		t.Errorf("total = %v", r0.Total())
	}
	if CriticalRank(rows) != 0 {
		t.Errorf("critical rank = %d", CriticalRank(rows))
	}
	// ELWait exceeding Comm clamps Transfer at zero.
	clamp := ExtractCriticalPath(mkTrace(
		Ev{T: 1, Kind: EvWaitLogged, Rank: 0, A: uint64(time.Second)},
	), []*Stats{st1, nil})
	if clamp[0].Transfer != 0 {
		t.Errorf("transfer not clamped: %v", clamp[0].Transfer)
	}
	if clamp[1].Compute != 0 {
		t.Errorf("nil Stats row: %+v", clamp[1])
	}
	if got := ExtractCriticalPath(nil, []*Stats{st0}); got[0].ELWait != 0 {
		t.Errorf("nil trace row: %+v", got[0])
	}
}
