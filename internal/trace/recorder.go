package trace

import (
	"sort"
	"sync"
	"time"
)

// Kind discriminates trace events. Each event is a fixed-size record
// stamped with the recording rank's virtual time; span-shaped phases
// (WAITLOGGED stalls, restarts) are recorded as a single event at the
// end of the phase carrying the phase duration, which keeps the hot
// path to one ring write per phase.
type Kind uint8

const (
	// EvSend: a fresh payload left the daemon. Span = the message's
	// span id, Parent = suppressed determinants piggybacked on the
	// frame, A = destination rank, B = body bytes.
	EvSend Kind = 1 + iota
	// EvResend: a SAVED payload was retransmitted during a RESTART1/2
	// handshake. Same fields as EvSend. Retransmissions re-emit a
	// message whose original send already satisfied the WAITLOGGED
	// gate, so the auditor exempts them from the no-early-send check.
	EvResend
	// EvRecvWire: a payload frame arrived and decoded. Span = the span
	// id carried on the wire (zero when the sender was not tracing),
	// A = sender rank, B = body bytes.
	EvRecvWire
	// EvDeliver: a reception was committed (determinant created).
	// Span = PackSpan(rank, recvClock), Parent = the sender's span id,
	// A = channel seq, B = 1 if the determinant is submitted
	// pessimistically (gates the next send until quorum-durable), 2 if
	// it was suppressed (epoch-batched + piggybacked off the critical
	// path), 0 when the run has no EL, exempting the rank from the
	// durability gate.
	EvDeliver
	// EvDetSubmit: a determinant batch was handed to the EL pipeline.
	// A = batch seq, B = event count.
	EvDetSubmit
	// EvDetDurable: a committed determinant reached write-quorum
	// durability (its batch retired in order). Span = the determinant's
	// PackSpan(rank, recvClock), A = batch seq.
	EvDetDurable
	// EvWaitLogged: a WAITLOGGED stall cleared. A = stall duration in
	// virtual nanoseconds, B = unacked determinants when the stall began.
	EvWaitLogged
	// EvCkptChunk: a checkpoint chunk was transmitted. A = checkpoint
	// seq, B = chunk index.
	EvCkptChunk
	// EvCkptDurable: a checkpoint reached write-quorum durability.
	// A = checkpoint seq, B = chunk count (0 = monolithic transfer).
	EvCkptDurable
	// EvGCNote: this rank told peer A (via KCkptNote) that deliveries
	// from A up to clock B are covered by a durable checkpoint, so A
	// may reclaim those SAVED entries (§4.6.1).
	EvGCNote
	// EvGCApply: this rank reclaimed SAVED entries for peer A up to
	// clock B on receipt of a KCkptNote.
	EvGCApply
	// EvReplay: a delivery was replayed from the stash during recovery.
	// Span = PackSpan(rank, recvClock), Parent = sender span id,
	// A = sender rank, B = channel seq.
	EvReplay
	// EvRestartBegin: recovery started. A = incarnation.
	EvRestartBegin
	// EvRestartEnd: recovery finished (RESTART1/2 handshake done,
	// replay may still be draining). A = incarnation, B = recovery
	// duration in virtual nanoseconds.
	EvRestartEnd
	// EvDetSuppressed: a delivery was classified deterministic and its
	// determinant suppressed off the critical path (epoch-batched to the
	// EL instead of gating the next send). Span = the determinant's
	// PackSpan(rank, recvClock), Parent = the sender's span id,
	// A = competing undelivered candidates from other senders at commit
	// time, B = outstanding probes at commit time. A and B are recorded
	// by the delivery path itself, independent of the classifier's
	// verdict, so the auditor can convict a broken classifier: a
	// suppressed delivery with A>0 or B>0 was nondeterministic.
	EvDetSuppressed
)

func (k Kind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvResend:
		return "resend"
	case EvRecvWire:
		return "recv-wire"
	case EvDeliver:
		return "deliver"
	case EvDetSubmit:
		return "det-submit"
	case EvDetDurable:
		return "det-durable"
	case EvWaitLogged:
		return "waitlogged"
	case EvCkptChunk:
		return "ckpt-chunk"
	case EvCkptDurable:
		return "ckpt-durable"
	case EvGCNote:
		return "gc-note"
	case EvGCApply:
		return "gc-apply"
	case EvReplay:
		return "replay"
	case EvRestartBegin:
		return "restart-begin"
	case EvRestartEnd:
		return "restart-end"
	case EvDetSuppressed:
		return "det-suppressed"
	}
	return "?"
}

// Ev is one fixed-size trace record. Field meaning depends on Kind.
type Ev struct {
	T      time.Duration // virtual timestamp
	Span   uint64        // span id (PackSpan) or phase-specific
	Parent uint64        // causal parent span id (0 = none)
	A, B   uint64        // kind-specific payload
	Rank   int32         // recording rank
	Inc    uint32        // incarnation of the recording daemon
	Kind   Kind
}

// PackSpan builds the span id of a message or determinant: the paper's
// §4.1 message identifier (emitting rank, logical clock at emission)
// packed into 64 bits. Rank occupies the top 16 bits, so clocks up to
// 2^48 are representable — far beyond any simulated run.
func PackSpan(rank int, clock uint64) uint64 {
	return uint64(rank+1)<<48 | clock&(1<<48-1)
}

// UnpackSpan splits a span id into rank and clock. Rank is -1 for the
// zero (absent) span.
func UnpackSpan(span uint64) (rank int, clock uint64) {
	return int(span>>48) - 1, span & (1<<48 - 1)
}

// Recorder is a per-rank ring buffer of trace events. The ring is
// preallocated at construction; Record never allocates and never
// blocks, so it is safe on the daemon's hot send path. When the ring
// wraps, the oldest events are overwritten and Dropped counts them —
// the auditor then reports the trace as incomplete rather than
// claiming invariants over evidence it no longer has.
//
// A Recorder is owned by a single simulated rank. The virtual-time
// scheduler serializes all actors of a run, so successive incarnations
// of a rank may share one Recorder without locking. A deployed worker
// runs on real goroutines instead and must call SetShared once before
// traffic, which arms an internal mutex for Record/Events.
type Recorder struct {
	rank    int32
	inc     uint32
	evs     []Ev
	n       int   // total events recorded (monotonic)
	dropped int64 // events overwritten by ring wrap
	mu      *sync.Mutex
}

// DefaultRecorderCap is the per-rank ring capacity used by the cluster
// harness: at 56 bytes per record this is ~3.6 MB per rank, enough for
// every seeded scenario in the test suites without wrapping.
const DefaultRecorderCap = 1 << 16

// NewRecorder returns a recorder for the given rank with a ring of the
// given capacity (DefaultRecorderCap if cap <= 0).
func NewRecorder(rank, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{rank: int32(rank), evs: make([]Ev, 0, capacity)}
}

// SetIncarnation stamps subsequent events with the daemon incarnation
// currently driving this rank.
func (r *Recorder) SetIncarnation(inc int) {
	if r != nil {
		r.inc = uint32(inc)
	}
}

// SetShared arms a mutex around Record and the read accessors, for
// deployed workers where a flusher goroutine snapshots the ring while
// the daemon records. Call once, before concurrent use. Simulated runs
// never call it and keep the lock-free hot path.
func (r *Recorder) SetShared() {
	if r != nil && r.mu == nil {
		r.mu = &sync.Mutex{}
	}
}

func (r *Recorder) lock() {
	if r.mu != nil {
		r.mu.Lock()
	}
}

func (r *Recorder) unlock() {
	if r.mu != nil {
		r.mu.Unlock()
	}
}

// Record appends one event. Nil receivers are no-ops so call sites can
// stay unconditional off the tracing-enabled path.
func (r *Recorder) Record(t time.Duration, k Kind, span, parent, a, b uint64) {
	if r == nil {
		return
	}
	r.lock()
	defer r.unlock()
	ev := Ev{T: t, Span: span, Parent: parent, A: a, B: b, Rank: r.rank, Inc: r.inc, Kind: k}
	if len(r.evs) < cap(r.evs) {
		r.evs = append(r.evs, ev)
	} else {
		r.evs[r.n%len(r.evs)] = ev
		r.dropped++
	}
	r.n++
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.lock()
	defer r.unlock()
	return len(r.evs)
}

// Dropped reports how many events were lost to ring wrap.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.lock()
	defer r.unlock()
	return r.dropped
}

// Events returns the ring contents in record order (oldest first).
func (r *Recorder) Events() []Ev {
	if r == nil {
		return nil
	}
	r.lock()
	defer r.unlock()
	if r.n <= len(r.evs) {
		out := make([]Ev, len(r.evs))
		copy(out, r.evs)
		return out
	}
	// Wrapped: the oldest surviving record sits at n % cap.
	head := r.n % len(r.evs)
	out := make([]Ev, 0, len(r.evs))
	out = append(out, r.evs[head:]...)
	return append(out, r.evs[:head]...)
}

// Trace is the merged, time-ordered record of a whole run.
type Trace struct {
	Evs []Ev
	// Dropped counts ring-wrap losses across all recorders. A nonzero
	// value marks the trace incomplete: the auditor will not claim
	// violations it cannot anchor, and reports Incomplete instead.
	Dropped int64
}

// Merge combines per-rank recorders into one trace sorted by virtual
// time. The sort is stable over per-recorder order, so events a rank
// recorded at the same instant keep their program order — which is
// what the per-rank auditor passes rely on.
func Merge(recs ...*Recorder) *Trace {
	tr := &Trace{}
	for _, r := range recs {
		tr.Evs = append(tr.Evs, r.Events()...)
		tr.Dropped += r.Dropped()
	}
	sortTrace(tr)
	return tr
}

func sortTrace(tr *Trace) {
	sort.SliceStable(tr.Evs, func(i, j int) bool { return tr.Evs[i].T < tr.Evs[j].T })
}

// Count returns how many events of the given kind the trace holds.
func (t *Trace) Count(k Kind) int {
	n := 0
	for i := range t.Evs {
		if t.Evs[i].Kind == k {
			n++
		}
	}
	return n
}
