package trace

import (
	"reflect"
	"testing"
	"time"
)

func TestAddAndGet(t *testing.T) {
	s := New()
	s.Add("MPI_Send", 2*time.Millisecond)
	s.Add("MPI_Send", 3*time.Millisecond)
	s.Add("MPI_Wait", time.Millisecond)
	b := s.Get("MPI_Send")
	if b.Calls != 2 || b.Time != 5*time.Millisecond {
		t.Errorf("send bucket = %+v", b)
	}
	if z := s.Get("MPI_Nothing"); z.Calls != 0 || z.Time != 0 {
		t.Errorf("missing bucket = %+v", z)
	}
}

func TestCommExcludesCompute(t *testing.T) {
	s := New()
	s.Add("MPI_Send", 2*time.Millisecond)
	s.Add(Compute, 10*time.Millisecond)
	s.Add("MPI_Recv", 3*time.Millisecond)
	if got := s.CommTime(); got != 5*time.Millisecond {
		t.Errorf("CommTime = %v", got)
	}
	if got := s.ComputeTime(); got != 10*time.Millisecond {
		t.Errorf("ComputeTime = %v", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Add("MPI_Send", time.Millisecond)
	b.Add("MPI_Send", 2*time.Millisecond)
	b.Add("MPI_Wait", 4*time.Millisecond)
	a.Merge(b)
	if got := a.Get("MPI_Send"); got.Calls != 2 || got.Time != 3*time.Millisecond {
		t.Errorf("merged send = %+v", got)
	}
	if got := a.Get("MPI_Wait"); got.Calls != 1 || got.Time != 4*time.Millisecond {
		t.Errorf("merged wait = %+v", got)
	}
}

func TestNamesSorted(t *testing.T) {
	s := New()
	s.Add("z", 1)
	s.Add("a", 1)
	s.Add("m", 1)
	if got := s.Names(); !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Errorf("Names = %v", got)
	}
}
