// Trace snapshot files: how a deployed worker's in-memory trace ring
// crosses a process boundary. A simulated run hands its Recorders to
// the auditor directly; a deployed worker (cmd/vrun, cmd/soak) instead
// flushes periodic snapshots to disk, and the supervisor merges the
// files of every incarnation into one Trace after the run.
//
// A snapshot is written whole to a temporary file and renamed into
// place, so a reader never observes a partial file and a SIGKILL
// mid-flush costs at most the events recorded since the previous
// snapshot — a suffix. That prefix property is what lets the
// happens-before auditor treat a crashed worker's trace as truncated
// evidence rather than contradictory evidence (see AuditHBOpts).
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

var fileMagic = [4]byte{'M', 'V', 'T', 'R'}

const evWire = 8 + 8 + 8 + 8 + 8 + 4 + 4 + 1 // T Span Parent A B Rank Inc Kind

// WriteSnapshot atomically writes the recorder's current contents to
// path (tmp file + rename). Concurrent Record calls are safe when the
// recorder is in shared mode.
func WriteSnapshot(path string, r *Recorder) error {
	evs := r.Events()
	dropped := r.Dropped()
	buf := make([]byte, 0, 4+8+4+4+len(evs)*evWire)
	buf = append(buf, fileMagic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(dropped))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(evs)))
	body := make([]byte, 0, len(evs)*evWire)
	for i := range evs {
		e := &evs[i]
		body = binary.BigEndian.AppendUint64(body, uint64(e.T))
		body = binary.BigEndian.AppendUint64(body, e.Span)
		body = binary.BigEndian.AppendUint64(body, e.Parent)
		body = binary.BigEndian.AppendUint64(body, e.A)
		body = binary.BigEndian.AppendUint64(body, e.B)
		body = binary.BigEndian.AppendUint32(body, uint32(e.Rank))
		body = binary.BigEndian.AppendUint32(body, e.Inc)
		body = append(body, byte(e.Kind))
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	buf = append(buf, body...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadSnapshot reads a snapshot written by WriteSnapshot.
func ReadSnapshot(path string) (evs []Ev, dropped int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < 4+8+4+4 || [4]byte(data[:4]) != fileMagic {
		return nil, 0, fmt.Errorf("trace: %s is not a snapshot file", path)
	}
	dropped = int64(binary.BigEndian.Uint64(data[4:12]))
	count := int(binary.BigEndian.Uint32(data[12:16]))
	want := binary.BigEndian.Uint32(data[16:20])
	body := data[20:]
	if len(body) != count*evWire {
		return nil, 0, fmt.Errorf("trace: %s holds %d bytes for %d records", path, len(body), count)
	}
	if crc32.ChecksumIEEE(body) != want {
		return nil, 0, fmt.Errorf("trace: %s fails its checksum", path)
	}
	evs = make([]Ev, count)
	for i := 0; i < count; i++ {
		b := body[i*evWire:]
		evs[i] = Ev{
			T:      time.Duration(binary.BigEndian.Uint64(b)),
			Span:   binary.BigEndian.Uint64(b[8:]),
			Parent: binary.BigEndian.Uint64(b[16:]),
			A:      binary.BigEndian.Uint64(b[24:]),
			B:      binary.BigEndian.Uint64(b[32:]),
			Rank:   int32(binary.BigEndian.Uint32(b[40:])),
			Inc:    binary.BigEndian.Uint32(b[44:]),
			Kind:   Kind(b[48]),
		}
	}
	return evs, dropped, nil
}

// BuildTrace merges every snapshot matching glob into one time-sorted
// Trace. A worker flushes one file per incarnation ("trace-r2-i1.mvtr"
// style names), so the merged trace spans crashes; files that vanished
// with their worker are simply absent, which the auditor tolerates as
// truncated evidence.
func BuildTrace(glob string) (*Trace, error) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, err
	}
	tr := &Trace{}
	for _, p := range paths {
		evs, dropped, err := ReadSnapshot(p)
		if err != nil {
			return nil, err
		}
		tr.Evs = append(tr.Evs, evs...)
		tr.Dropped += dropped
	}
	sortTrace(tr)
	return tr, nil
}
