// Package trace accumulates the per-MPI-call time decomposition used by
// Table 1 and the compute/communication breakdown of figure 8.
package trace

import (
	"sort"
	"time"
)

// Stats collects named time buckets for one MPI process.
type Stats struct {
	buckets map[string]*Bucket
}

// Bucket is the accumulated time and call count of one MPI function.
type Bucket struct {
	Calls int64
	Time  time.Duration
}

// New returns an empty Stats.
func New() *Stats {
	return &Stats{buckets: make(map[string]*Bucket)}
}

// Add accrues one call of duration d to the named bucket.
func (s *Stats) Add(name string, d time.Duration) {
	b := s.buckets[name]
	if b == nil {
		b = &Bucket{}
		s.buckets[name] = b
	}
	b.Calls++
	b.Time += d
}

// Get returns the bucket for name (zero bucket if absent).
func (s *Stats) Get(name string) Bucket {
	if b := s.buckets[name]; b != nil {
		return *b
	}
	return Bucket{}
}

// Names returns the bucket names in sorted order.
func (s *Stats) Names() []string {
	out := make([]string, 0, len(s.buckets))
	for k := range s.buckets {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CommTime sums every bucket except the compute bucket: the total time
// spent inside MPI calls.
func (s *Stats) CommTime() time.Duration {
	var total time.Duration
	for name, b := range s.buckets {
		if name == Compute {
			continue
		}
		total += b.Time
	}
	return total
}

// ComputeTime returns the accumulated application compute time.
func (s *Stats) ComputeTime() time.Duration { return s.Get(Compute).Time }

// Merge adds other's buckets into s.
func (s *Stats) Merge(other *Stats) {
	for name, b := range other.buckets {
		mine := s.buckets[name]
		if mine == nil {
			mine = &Bucket{}
			s.buckets[name] = mine
		}
		mine.Calls += b.Calls
		mine.Time += b.Time
	}
}

// Compute is the bucket name for application computation.
const Compute = "Compute"
