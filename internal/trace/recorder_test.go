package trace

import (
	"testing"
	"time"
)

func TestPackSpanRoundTrip(t *testing.T) {
	cases := []struct {
		rank  int
		clock uint64
	}{
		{0, 0}, {0, 1}, {3, 12345}, {255, 1<<48 - 1}, {1, 1 << 47},
	}
	for _, c := range cases {
		span := PackSpan(c.rank, c.clock)
		if span == 0 {
			t.Errorf("PackSpan(%d,%d) = 0, collides with the absent-span sentinel", c.rank, c.clock)
		}
		r, cl := UnpackSpan(span)
		if r != c.rank || cl != c.clock {
			t.Errorf("UnpackSpan(PackSpan(%d,%d)) = (%d,%d)", c.rank, c.clock, r, cl)
		}
	}
	if r, cl := UnpackSpan(0); r != -1 || cl != 0 {
		t.Errorf("UnpackSpan(0) = (%d,%d), want (-1,0)", r, cl)
	}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(3, 8)
	r.SetIncarnation(2)
	r.Record(10, EvSend, 0x42, 0, 1, 100)
	r.Record(20, EvDeliver, 0x43, 0x42, 7, 1)
	if r.Len() != 2 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events: %d", len(evs))
	}
	want := Ev{T: 10, Span: 0x42, A: 1, B: 100, Rank: 3, Inc: 2, Kind: EvSend}
	if evs[0] != want {
		t.Errorf("ev[0] = %+v, want %+v", evs[0], want)
	}
	if evs[1].Parent != 0x42 || evs[1].Kind != EvDeliver {
		t.Errorf("ev[1] = %+v", evs[1])
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.SetIncarnation(1)
	r.Record(1, EvSend, 0, 0, 0, 0)
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Error("nil recorder is not a no-op")
	}
}

func TestRecorderRingWrap(t *testing.T) {
	const capacity = 4
	r := NewRecorder(0, capacity)
	for i := 0; i < 10; i++ {
		r.Record(time.Duration(i), EvSend, uint64(i), 0, 0, 0)
	}
	if r.Len() != capacity {
		t.Fatalf("len = %d, want %d", r.Len(), capacity)
	}
	if r.Dropped() != 10-capacity {
		t.Errorf("dropped = %d, want %d", r.Dropped(), 10-capacity)
	}
	evs := r.Events()
	// Oldest surviving record first: spans 6,7,8,9.
	for i, ev := range evs {
		if ev.Span != uint64(6+i) {
			t.Errorf("ev[%d].Span = %d, want %d", i, ev.Span, 6+i)
		}
	}
}

func TestRecorderDefaultCap(t *testing.T) {
	r := NewRecorder(0, 0)
	if cap(r.evs) != DefaultRecorderCap {
		t.Errorf("cap = %d, want %d", cap(r.evs), DefaultRecorderCap)
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(0, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(1, EvSend, 1, 0, 0, 0)
	})
	if allocs != 0 {
		t.Errorf("Record allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestMergeStableOrder(t *testing.T) {
	a := NewRecorder(0, 8)
	b := NewRecorder(1, 8)
	// Rank 0 records two events at the same virtual instant: program
	// order (deliver, then durable) must survive the merge.
	a.Record(5, EvDeliver, 0x10, 0, 0, 1)
	a.Record(5, EvDetDurable, 0x10, 0, 0, 0)
	b.Record(3, EvSend, 0x20, 0, 0, 0)
	tr := Merge(a, b)
	if len(tr.Evs) != 3 || tr.Dropped != 0 {
		t.Fatalf("merged: %d events, %d dropped", len(tr.Evs), tr.Dropped)
	}
	if tr.Evs[0].Kind != EvSend {
		t.Errorf("earliest event is %v, want send", tr.Evs[0].Kind)
	}
	if tr.Evs[1].Kind != EvDeliver || tr.Evs[2].Kind != EvDetDurable {
		t.Errorf("same-instant program order broken: %v then %v", tr.Evs[1].Kind, tr.Evs[2].Kind)
	}
	if tr.Count(EvSend) != 1 || tr.Count(EvDeliver) != 1 || tr.Count(EvReplay) != 0 {
		t.Error("Count miscounts")
	}
}

func TestMergePropagatesDropped(t *testing.T) {
	r := NewRecorder(0, 2)
	for i := 0; i < 5; i++ {
		r.Record(time.Duration(i), EvSend, 0, 0, 0, 0)
	}
	if tr := Merge(r); tr.Dropped != 3 {
		t.Errorf("merged dropped = %d, want 3", tr.Dropped)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{EvSend, EvResend, EvRecvWire, EvDeliver, EvDetSubmit,
		EvDetDurable, EvWaitLogged, EvCkptChunk, EvCkptDurable, EvGCNote,
		EvGCApply, EvReplay, EvRestartBegin, EvRestartEnd}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "?" || seen[s] {
			t.Errorf("kind %d has bad name %q", k, s)
		}
		seen[s] = true
	}
	if Kind(200).String() != "?" {
		t.Error("unknown kind should stringify as ?")
	}
}

func TestStatsBuckets(t *testing.T) {
	s := New()
	s.Add(Compute, 10*time.Millisecond)
	s.Add("Send", 2*time.Millisecond)
	s.Add("Send", 3*time.Millisecond)
	s.Add("Recv", 5*time.Millisecond)
	if b := s.Get("Send"); b.Calls != 2 || b.Time != 5*time.Millisecond {
		t.Errorf("Send bucket: %+v", b)
	}
	if got := s.CommTime(); got != 10*time.Millisecond {
		t.Errorf("CommTime = %v", got)
	}
	if got := s.ComputeTime(); got != 10*time.Millisecond {
		t.Errorf("ComputeTime = %v", got)
	}
	names := s.Names()
	if len(names) != 3 || names[0] != Compute {
		t.Errorf("Names = %v", names)
	}
	other := New()
	other.Add("Send", time.Millisecond)
	s.Merge(other)
	if b := s.Get("Send"); b.Calls != 3 || b.Time != 6*time.Millisecond {
		t.Errorf("merged Send bucket: %+v", b)
	}
	if b := s.Get("absent"); b.Calls != 0 {
		t.Errorf("absent bucket: %+v", b)
	}
}
