package trace

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRecorder(3, 64)
	r.SetIncarnation(2)
	r.SetShared()
	for i := 0; i < 10; i++ {
		r.Record(time.Duration(i)*time.Millisecond, EvSend, PackSpan(3, uint64(i+1)), 0, 1, uint64(i))
	}
	path := filepath.Join(t.TempDir(), "trace-r3-i2.mvtr")
	if err := WriteSnapshot(path, r); err != nil {
		t.Fatal(err)
	}
	evs, dropped, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || len(evs) != 10 {
		t.Fatalf("read %d events, dropped=%d", len(evs), dropped)
	}
	for i, e := range evs {
		if e.Rank != 3 || e.Inc != 2 || e.Kind != EvSend || e.B != uint64(i) {
			t.Fatalf("event %d mangled: %+v", i, e)
		}
	}
	// Re-snapshot over the same path must stay atomic and readable.
	r.Record(time.Second, EvDeliver, PackSpan(3, 99), 0, 1, 1)
	if err := WriteSnapshot(path, r); err != nil {
		t.Fatal(err)
	}
	evs, _, err = ReadSnapshot(path)
	if err != nil || len(evs) != 11 {
		t.Fatalf("re-snapshot read %d events, err=%v", len(evs), err)
	}
}

func TestSnapshotRejectsCorrupt(t *testing.T) {
	r := NewRecorder(0, 16)
	r.Record(time.Millisecond, EvSend, 1, 0, 0, 0)
	path := filepath.Join(t.TempDir(), "t.mvtr")
	if err := WriteSnapshot(path, r); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, _, err := ReadSnapshot(path); err == nil {
		t.Fatal("corrupt snapshot read back clean")
	}
}

func TestBuildTraceMergesIncarnations(t *testing.T) {
	dir := t.TempDir()
	r1 := NewRecorder(0, 16)
	r1.SetIncarnation(0)
	r1.Record(time.Millisecond, EvDeliver, PackSpan(0, 1), 0, 1, 1)
	r2 := NewRecorder(0, 16)
	r2.SetIncarnation(1)
	r2.Record(2*time.Millisecond, EvReplay, PackSpan(0, 1), 0, 1, 1)
	for i, r := range []*Recorder{r1, r2} {
		if err := WriteSnapshot(filepath.Join(dir, "trace-r0-i"+string(rune('0'+i))+".mvtr"), r); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := BuildTrace(filepath.Join(dir, "trace-*.mvtr"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Evs) != 2 || tr.Evs[0].Kind != EvDeliver || tr.Evs[1].Kind != EvReplay {
		t.Fatalf("merged trace wrong: %+v", tr.Evs)
	}
	if !AuditHB(tr).OK() {
		t.Fatal("merged two-incarnation trace fails audit")
	}
}

// TestAuditHBWithKnownCommits: a replay whose original commit record
// died with the crashed incarnation is a violation under the strict
// audit, but anchors cleanly when the EL's durable log vouches for it.
func TestAuditHBWithKnownCommits(t *testing.T) {
	span := PackSpan(1, 7)
	tr := &Trace{Evs: []Ev{
		{T: time.Millisecond, Rank: 1, Kind: EvRestartBegin},
		{T: 2 * time.Millisecond, Rank: 1, Kind: EvReplay, Span: span, A: 0, B: 1},
	}}
	if AuditHB(tr).OK() {
		t.Fatal("strict audit must flag a replay with no recorded commit")
	}
	rep := AuditHBWith(tr, AuditHBOpts{KnownCommits: map[uint64]bool{span: true}})
	if !rep.OK() {
		t.Fatalf("EL-anchored replay still flagged: %s", rep.Summary())
	}
}

// TestAuditHBWithCrashTail: a GC apply whose peer's note record was
// lost in the crash tail passes only under CrashTail; replay order
// violations are still caught (prefix loss cannot reorder survivors).
func TestAuditHBWithCrashTail(t *testing.T) {
	tr := &Trace{Evs: []Ev{
		{T: time.Millisecond, Rank: 0, Kind: EvGCApply, A: 1, B: 5},
	}}
	if AuditHB(tr).OK() {
		t.Fatal("strict audit must flag an unanchored GC apply")
	}
	if rep := AuditHBWith(tr, AuditHBOpts{CrashTail: true}); !rep.OK() {
		t.Fatalf("CrashTail audit still flags the tail-lost note: %s", rep.Summary())
	}
	bad := &Trace{Evs: []Ev{
		{T: time.Millisecond, Rank: 0, Kind: EvDeliver, Span: PackSpan(0, 2), B: 0},
		{T: 2 * time.Millisecond, Rank: 0, Kind: EvDeliver, Span: PackSpan(0, 1), B: 0},
		{T: 3 * time.Millisecond, Rank: 0, Kind: EvRestartBegin},
		{T: 4 * time.Millisecond, Rank: 0, Kind: EvReplay, Span: PackSpan(0, 2)},
		{T: 5 * time.Millisecond, Rank: 0, Kind: EvReplay, Span: PackSpan(0, 1)},
	}}
	if rep := AuditHBWith(bad, AuditHBOpts{CrashTail: true}); len(rep.ReplayViolations) == 0 {
		t.Fatal("CrashTail audit must still catch descending replay order")
	}
}
