package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry is a typed metrics registry: named counters, gauges and
// histograms with one uniform export path (Snapshot) feeding the
// vbench -json artifacts. The per-actor Stats structs remain the
// zero-cost collection layer on hot paths; subsystems and the cluster
// harness fold them into a Registry at observation points (batch
// boundaries, run teardown), so every run exports the same namespaced
// metric set regardless of which subsystem produced it.
//
// All methods are safe for concurrent use; instruments are created on
// first touch and live for the registry's lifetime.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a point-in-time value.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates observations into power-of-two buckets plus
// exact count/sum/min/max, which is cheap, allocation-free after
// construction, and deterministic — quantiles are reported as bucket
// upper bounds.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [64]int64 // buckets[i] counts v with 2^(i-1) < v <= 2^i (buckets[0]: v <= 1)
}

func bucketOf(v float64) int {
	if v <= 1 {
		return 0
	}
	b := int(math.Ceil(math.Log2(v)))
	if b > 63 {
		b = 63
	}
	return b
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

// HistStats is a histogram summary suitable for JSON export.
type HistStats struct {
	Count         int64
	Sum, Min, Max float64
	Mean          float64
	P50, P90, P99 float64
}

// Stats summarizes the histogram. Quantiles are upper bounds of the
// bucket containing the quantile rank.
func (h *Histogram) Stats() HistStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / float64(h.count)
	q := func(p float64) float64 {
		rank := int64(math.Ceil(p * float64(h.count)))
		var seen int64
		for i, n := range h.buckets {
			seen += n
			if seen >= rank {
				if i == 0 {
					return 1
				}
				return math.Pow(2, float64(i))
			}
		}
		return h.max
	}
	s.P50, s.P90, s.P99 = q(0.50), q(0.90), q(0.99)
	return s
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// AddCounters bulk-adds a map of counter deltas under a common prefix,
// the bridge from a subsystem's ad-hoc Stats struct into the registry.
func (r *Registry) AddCounters(prefix string, m map[string]int64) {
	for k, v := range m {
		r.Counter(prefix + "." + k).Add(v)
	}
}

// Snapshot is a consistent, JSON-friendly export of every instrument.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistStats
}

// Snapshot exports the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]string, 0, len(r.counters))
	for k := range r.counters {
		counters = append(counters, k)
	}
	gauges := make([]string, 0, len(r.gauges))
	for k := range r.gauges {
		gauges = append(gauges, k)
	}
	hists := make([]string, 0, len(r.hists))
	for k := range r.hists {
		hists = append(hists, k)
	}
	cm, gm, hm := r.counters, r.gauges, r.hists
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistStats, len(hists)),
	}
	for _, k := range counters {
		s.Counters[k] = cm[k].Value()
	}
	for _, k := range gauges {
		s.Gauges[k] = gm[k].Value()
	}
	for _, k := range hists {
		s.Histograms[k] = hm[k].Stats()
	}
	return s
}

// Format renders the snapshot as sorted "name value" lines for logs.
func (s Snapshot) Format() string {
	var b strings.Builder
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "counter %s %d\n", k, s.Counters[k])
	}
	keys = keys[:0]
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "gauge %s %g\n", k, s.Gauges[k])
	}
	keys = keys[:0]
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "hist %s count=%d mean=%.3g p50=%.3g p99=%.3g\n", k, h.Count, h.Mean, h.P50, h.P99)
	}
	return b.String()
}
