package trace

import (
	"fmt"
	"strings"
	"time"
)

// HBReport is the verdict of the happens-before auditor over a
// completed trace. It checks the three causal invariants the MPICH-V2
// correctness argument rests on:
//
//  1. No payload leaves a daemon while a determinant of an earlier
//     delivery is not yet quorum-durable (the WAITLOGGED gate of
//     §4.3: logging is synchronous-before-send, so a message can
//     never causally depend on an unlogged nondeterministic choice).
//  2. Replayed deliveries are consumed in strictly ascending original
//     receiver-clock order, and every replayed delivery was actually
//     committed by a previous incarnation (§4.5 re-execution).
//  3. GC reclaims SAVED entries for a peer only after that peer
//     announced — via a KCkptNote derived from a durable checkpoint —
//     that the covered deliveries can no longer be re-requested
//     (§4.6.1).
//
// Violations carry human-readable descriptions in the style of
// cluster.Audit.
type HBReport struct {
	Ranks      int
	Events     int
	Sends      int
	Deliveries int
	Durables   int
	Replays    int

	// Suppressed: deliveries whose determinant was suppressed off the
	// critical path (EvDeliver with B=2).
	Suppressed int

	// EarlySends: payload released before the determinants of all
	// prior deliveries were quorum-logged (invariant 1).
	EarlySends []string
	// ReplayViolations: replay out of original receiver-clock order,
	// or replay of a delivery with no recorded commit (invariant 2).
	ReplayViolations []string
	// GCViolations: SAVED entries reclaimed without a covering
	// checkpoint note from the delivering peer (invariant 3).
	GCViolations []string
	// SuppressionViolations: invariant 1 relaxed for suppressed
	// determinants — a send may leave while they are not yet durable,
	// but only if the payload carries every one of them piggybacked
	// (causal logging: any dependent message transports the evidence).
	// Also convicts the classifier itself: a suppressed delivery that
	// the delivery path observed as nondeterministic (competing
	// candidates or outstanding probes at commit) is unsafe.
	SuppressionViolations []string

	// Incomplete marks a trace whose recorder rings wrapped; the
	// auditor skips checks it cannot anchor and OK() still reports
	// the violations it did find.
	Incomplete bool
}

// OK reports whether the audited trace upholds every invariant.
func (r HBReport) OK() bool {
	return len(r.EarlySends) == 0 && len(r.ReplayViolations) == 0 &&
		len(r.GCViolations) == 0 && len(r.SuppressionViolations) == 0
}

// Summary renders the report for test output.
func (r HBReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hb-audit: %d events over %d ranks (%d sends, %d deliveries, %d durable, %d replays)",
		r.Events, r.Ranks, r.Sends, r.Deliveries, r.Durables, r.Replays)
	if r.Suppressed > 0 {
		fmt.Fprintf(&b, " [%d dets suppressed]", r.Suppressed)
	}
	if r.Incomplete {
		b.WriteString(" [INCOMPLETE: recorder ring wrapped]")
	}
	section := func(name string, vs []string) {
		if len(vs) == 0 {
			return
		}
		fmt.Fprintf(&b, "\n%s (%d):", name, len(vs))
		for i, v := range vs {
			if i == 8 {
				fmt.Fprintf(&b, "\n  ... %d more", len(vs)-i)
				break
			}
			fmt.Fprintf(&b, "\n  %s", v)
		}
	}
	section("early sends", r.EarlySends)
	section("replay violations", r.ReplayViolations)
	section("gc violations", r.GCViolations)
	section("suppression violations", r.SuppressionViolations)
	return b.String()
}

// rankState tracks the per-rank auditor passes.
type rankState struct {
	// pending: forced (pessimistically logged) determinants committed
	// but not yet quorum-durable, keyed by span. A fresh EvSend while
	// this set is non-empty is an early send.
	pending map[uint64]Ev
	// pendingSuppressed: suppressed determinants committed but not yet
	// quorum-durable. These do not block sends, but every fresh EvSend
	// must piggyback all of them (EvSend.Parent carries the count).
	pendingSuppressed map[uint64]Ev
	// committed: every delivery ever committed on this rank, keyed by
	// span — the evidence replayed deliveries must anchor to.
	committed map[uint64]bool
	// lastReplay: original receiver clock of the previous replay in
	// the current incarnation.
	lastReplay uint64
}

// AuditHBOpts adapts the auditor to deployed traces, whose evidence is
// weaker than a simulated run's: a SIGKILLed worker loses the trace
// events recorded after its last snapshot flush — a suffix of its
// timeline — so an absence in the trace no longer proves an absence in
// the execution.
type AuditHBOpts struct {
	// KnownCommits are delivery spans known committed from evidence
	// outside the trace (the event loggers' durable determinant logs).
	// A replay anchoring to a known commit is legitimate even when the
	// crash ate the original EvDeliver record.
	KnownCommits map[uint64]bool
	// CrashTail, when set, tells the auditor that trace suffixes may be
	// missing (workers were SIGKILLed between snapshot flushes). Checks
	// that rest on the *presence* of a later event — a GC note observed
	// before its apply — are skipped; order checks over the events that
	// did survive still run, because snapshots are prefixes: loss never
	// reorders what remains.
	CrashTail bool
}

// AuditHB replays a merged trace and verifies the happens-before
// invariants. A nil or empty trace audits vacuously green.
func AuditHB(tr *Trace) HBReport { return AuditHBWith(tr, AuditHBOpts{}) }

// AuditHBWith is AuditHB with deployment options.
func AuditHBWith(tr *Trace, opts AuditHBOpts) HBReport {
	rep := HBReport{}
	if tr == nil {
		return rep
	}
	rep.Events = len(tr.Evs)
	rep.Incomplete = tr.Dropped > 0

	ranks := map[int32]*rankState{}
	state := func(r int32) *rankState {
		s, ok := ranks[r]
		if !ok {
			s = &rankState{pending: map[uint64]Ev{}, pendingSuppressed: map[uint64]Ev{}, committed: map[uint64]bool{}}
			ranks[r] = s
		}
		return s
	}
	// noted[q<<32|r] = highest delivered-up-to clock that rank q has
	// announced to rank r via a checkpoint note.
	noted := map[uint64]uint64{}
	nkey := func(q, r uint64) uint64 { return q<<32 | r&0xffffffff }

	for i := range tr.Evs {
		ev := &tr.Evs[i]
		s := state(ev.Rank)
		switch ev.Kind {
		case EvDeliver:
			rep.Deliveries++
			s.committed[ev.Span] = true
			switch ev.B {
			case 1: // determinant logged pessimistically: joins the gate
				s.pending[ev.Span] = *ev
			case 2: // determinant suppressed: rides piggybacked instead
				rep.Suppressed++
				s.pendingSuppressed[ev.Span] = *ev
			}
		case EvDetSuppressed:
			if (ev.A > 0 || ev.B > 0) && !rep.Incomplete {
				rep.SuppressionViolations = append(rep.SuppressionViolations, fmt.Sprintf(
					"rank %d t=%v: suppressed determinant span=%#x for a nondeterministic delivery (%d competing candidate(s), %d outstanding probe(s))",
					ev.Rank, ev.T, ev.Span, ev.A, ev.B))
			}
		case EvDetDurable:
			rep.Durables++
			delete(s.pending, ev.Span)
			delete(s.pendingSuppressed, ev.Span)
		case EvSend:
			rep.Sends++
			if len(s.pending) > 0 && !rep.Incomplete {
				// Pick one witness determinant for the message.
				var w Ev
				for _, p := range s.pending {
					w = p
					break
				}
				_, wc := UnpackSpan(w.Span)
				rep.EarlySends = append(rep.EarlySends, fmt.Sprintf(
					"rank %d t=%v: payload span=%#x to rank %d left with %d unlogged determinant(s), e.g. recv-clock %d from rank %d",
					ev.Rank, ev.T, ev.Span, ev.A, len(s.pending), wc, w.A))
			}
			if n := uint64(len(s.pendingSuppressed)); n > 0 && ev.Parent < n && !rep.Incomplete {
				rep.SuppressionViolations = append(rep.SuppressionViolations, fmt.Sprintf(
					"rank %d t=%v: payload span=%#x to rank %d left with %d suppressed determinant(s) pending but only %d piggybacked",
					ev.Rank, ev.T, ev.Span, ev.A, n, ev.Parent))
			}
		case EvReplay:
			rep.Replays++
			_, clock := UnpackSpan(ev.Span)
			if clock <= s.lastReplay {
				rep.ReplayViolations = append(rep.ReplayViolations, fmt.Sprintf(
					"rank %d t=%v: replayed recv-clock %d after %d (must be strictly ascending)",
					ev.Rank, ev.T, clock, s.lastReplay))
			}
			s.lastReplay = clock
			if !s.committed[ev.Span] && !opts.KnownCommits[ev.Span] && !rep.Incomplete {
				rep.ReplayViolations = append(rep.ReplayViolations, fmt.Sprintf(
					"rank %d t=%v: replayed span=%#x (recv-clock %d) with no recorded original commit",
					ev.Rank, ev.T, ev.Span, clock))
			}
			s.committed[ev.Span] = true
		case EvRestartBegin:
			// Crash wiped volatile state: unacked determinants are
			// gone (they will be re-fetched from the EL), and the
			// replay cursor restarts from the checkpoint.
			s.pending = map[uint64]Ev{}
			s.pendingSuppressed = map[uint64]Ev{}
			s.lastReplay = 0
		case EvGCNote:
			k := nkey(uint64(ev.Rank), ev.A)
			if ev.B > noted[k] {
				noted[k] = ev.B
			}
		case EvGCApply:
			// The peer's note lives on the *peer's* timeline; under
			// CrashTail its record may be in the lost suffix even though
			// the note was sent, so the anchor check proves nothing.
			if !rep.Incomplete && !opts.CrashTail {
				if covered := noted[nkey(ev.A, uint64(ev.Rank))]; ev.B > covered {
					rep.GCViolations = append(rep.GCViolations, fmt.Sprintf(
						"rank %d t=%v: reclaimed SAVED entries for peer %d up to clock %d, but peer only announced %d durable",
						ev.Rank, ev.T, ev.A, ev.B, covered))
				}
			}
		}
	}
	rep.Ranks = len(ranks)
	return rep
}

// CriticalPath is the per-rank decomposition of where a run's virtual
// time went, extracted from the trace plus the MPI-layer Stats: pure
// compute, EL ack stalls (WAITLOGGED), recovery (restart handshakes),
// and the residual transfer/queueing time inside communication.
type CriticalPath struct {
	Rank     int
	Compute  time.Duration
	Comm     time.Duration // total MPI communication time
	ELWait   time.Duration // WAITLOGGED stalls inside Comm
	Recovery time.Duration // restart handshake + fetch time
	Transfer time.Duration // Comm minus ELWait minus Recovery (clamped)
}

// Total is the rank's accounted virtual time.
func (c CriticalPath) Total() time.Duration { return c.Compute + c.Comm }

// ExtractCriticalPath folds a trace and the per-rank MPI time buckets
// into per-rank critical-path rows. perRank[i] may be nil. The row
// with the largest Total is the run's critical path.
func ExtractCriticalPath(tr *Trace, perRank []*Stats) []CriticalPath {
	out := make([]CriticalPath, len(perRank))
	for r := range out {
		out[r].Rank = r
		if st := perRank[r]; st != nil {
			out[r].Compute = st.ComputeTime()
			out[r].Comm = st.CommTime()
		}
	}
	if tr != nil {
		for i := range tr.Evs {
			ev := &tr.Evs[i]
			if int(ev.Rank) >= len(out) || ev.Rank < 0 {
				continue
			}
			switch ev.Kind {
			case EvWaitLogged:
				out[ev.Rank].ELWait += time.Duration(ev.A)
			case EvRestartEnd:
				out[ev.Rank].Recovery += time.Duration(ev.B)
			}
		}
	}
	for r := range out {
		t := out[r].Comm - out[r].ELWait - out[r].Recovery
		if t < 0 {
			t = 0
		}
		out[r].Transfer = t
	}
	return out
}

// CriticalRank returns the index of the row with the largest Total.
func CriticalRank(rows []CriticalPath) int {
	best := 0
	for i := range rows {
		if rows[i].Total() > rows[best].Total() {
			best = i
		}
	}
	return best
}
