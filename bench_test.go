package mpichv_test

// One benchmark per table/figure of the paper's evaluation (§5). Each
// regenerates the experiment (quick sweeps) and reports its headline
// numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. cmd/vbench runs the full sweeps.

import (
	"io"
	"testing"
	"time"

	"mpichv/internal/bench"
	"mpichv/internal/cluster"
	"mpichv/internal/nas"
	"mpichv/internal/sched"
)

func BenchmarkFigure5Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p4 := bench.PingPong(cluster.P4, 1<<20, 4)
		v1 := bench.PingPong(cluster.V1, 1<<20, 4)
		v2 := bench.PingPong(cluster.V2, 1<<20, 4)
		b.ReportMetric(p4.MBperS, "P4-MB/s")
		b.ReportMetric(v1.MBperS, "V1-MB/s")
		b.ReportMetric(v2.MBperS, "V2-MB/s")
	}
}

func BenchmarkFigure6Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p4 := bench.PingPong(cluster.P4, 0, 10)
		v1 := bench.PingPong(cluster.V1, 0, 10)
		v2 := bench.PingPong(cluster.V2, 0, 10)
		b.ReportMetric(float64(p4.OneWay.Microseconds()), "P4-µs")
		b.ReportMetric(float64(v1.OneWay.Microseconds()), "V1-µs")
		b.ReportMetric(float64(v2.OneWay.Microseconds()), "V2-µs")
	}
}

func benchKernel(b *testing.B, k nas.Benchmark, procs int) {
	for i := 0; i < b.N; i++ {
		p4 := bench.RunNAS(k, cluster.P4, procs, cluster.Config{})
		v2 := bench.RunNAS(k, cluster.V2, procs, cluster.Config{})
		if !p4.Verified || !v2.Verified {
			b.Fatalf("%s failed verification", k.ID())
		}
		b.ReportMetric(p4.Elapsed.Seconds(), "P4-s")
		b.ReportMetric(v2.Elapsed.Seconds(), "V2-s")
		b.ReportMetric(float64(v2.Elapsed)/float64(p4.Elapsed), "V2/P4")
	}
}

// Figure 7, one benchmark per kernel at a representative process count.
func BenchmarkFigure7CG(b *testing.B) { benchKernel(b, nas.CG("A"), 8) }
func BenchmarkFigure7MG(b *testing.B) { benchKernel(b, nas.MG("A"), 8) }
func BenchmarkFigure7FT(b *testing.B) { benchKernel(b, nas.FT("A"), 8) }
func BenchmarkFigure7LU(b *testing.B) { benchKernel(b, nas.LU("A"), 8) }
func BenchmarkFigure7BT(b *testing.B) { benchKernel(b, nas.BT("A"), 9) }
func BenchmarkFigure7SP(b *testing.B) { benchKernel(b, nas.SP("A"), 9) }

func BenchmarkFigure8Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure8Data(true)
		for _, r := range rows {
			if r.Bench == "CG.A" && r.Impl == cluster.V2 {
				b.ReportMetric(r.Comm.Seconds(), "CG-V2-comm-s")
				b.ReportMetric(r.Compute.Seconds(), "CG-V2-compute-s")
			}
		}
	}
}

func BenchmarkTable1Decomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1Data(true)
		b.ReportMetric(rows[0].Send.Seconds(), "BT-P4-Isend-s")
		b.ReportMetric(rows[1].Wait.Seconds(), "BT-V2-Wait-s")
	}
}

func BenchmarkFigure9Synthetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p4 := bench.Synthetic(cluster.P4, 64<<10, 4)
		v2 := bench.Synthetic(cluster.V2, 64<<10, 4)
		b.ReportMetric(p4.MBperS, "P4-MB/s")
		b.ReportMetric(v2.MBperS, "V2-MB/s")
		b.ReportMetric(v2.MBperS/p4.MBperS, "V2/P4")
	}
}

func BenchmarkFigure10Reexecution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		one := bench.Reexec(1<<10, 1)
		all := bench.Reexec(1<<10, 8)
		b.ReportMetric(float64(one.Reexec)/float64(one.Reference), "x1-ratio")
		b.ReportMetric(float64(all.Reexec)/float64(all.Reference), "x8-ratio")
	}
}

func BenchmarkFigure11FaultyExecution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := bench.Figure11Data(true)
		last := pts[len(pts)-1]
		if !last.Verified {
			b.Fatal("faulty run failed verification")
		}
		b.ReportMetric(last.Ratio, "slowdown-at-max-faults")
		b.ReportMetric(float64(last.Restarts), "restarts")
	}
}

func BenchmarkSchedulerPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := sched.ComparePolicies(16, 4000, 25)
		for _, r := range results {
			if r.Scheme == "broadcast" {
				switch r.Policy {
				case "round-robin":
					b.ReportMetric(r.MeanCkptBytes, "bcast-rr-ckptB")
				case "adaptive":
					b.ReportMetric(r.MeanCkptBytes, "bcast-adaptive-ckptB")
				}
			}
		}
	}
}

func BenchmarkAblationSendGating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Ablations(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures the substrate itself: virtual
// seconds simulated per wall second for a busy 8-node system.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Now()
		pt := bench.Reexec(4<<10, 0)
		wall := time.Since(start)
		b.ReportMetric(pt.Reference.Seconds()/wall.Seconds(), "virt-s/wall-s")
	}
}
