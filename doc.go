// Package mpichv is a Go reproduction of "MPICH-V2: a Fault Tolerant
// MPI for Volatile Nodes based on Pessimistic Sender Based Message
// Logging" (Bouteiller, Cappello, Hérault, Krawezik, Lemarinier,
// Magniette — SC 2003).
//
// The repository implements the complete system the paper describes —
// the pessimistic sender-based logging protocol (internal/core), the
// communication daemons for MPICH-V2 and the MPICH-P4/MPICH-V1
// baselines (internal/daemon), the event logger, checkpoint server,
// checkpoint scheduler and dispatcher services, an MPI layer with
// eager/rendezvous protocols and collectives (internal/mpi), the six
// NAS kernels the paper evaluates (internal/nas), and a benchmark
// harness regenerating every table and figure of the evaluation
// (internal/bench) — on top of a deterministic virtual-time simulator
// (internal/vtime, internal/netsim) calibrated to the paper's testbed,
// plus a real-TCP multi-process deployment (cmd/vrun).
//
// See README.md for a tour, DESIGN.md for the architecture and the
// substitutions made for 2003-era hardware, and EXPERIMENTS.md for the
// paper-versus-measured record.
package mpichv
