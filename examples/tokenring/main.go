// Tokenring: the paper's re-execution microbenchmark (figure 10) in
// miniature. An 8-node asynchronous token ring runs to completion; then
// the same ring runs with nodes killed just before the end, and we
// compare the re-execution time with the reference — a single restart
// costs far less than a full run because only receptions are replayed.
//
//	go run ./examples/tokenring
package main

import (
	"fmt"

	"mpichv/internal/bench"
)

func main() {
	const size = 1 << 10
	fmt.Printf("asynchronous token ring, 8 nodes, %d-byte tokens\n\n", size)
	for _, restarts := range []int{0, 1, 2, 4, 8} {
		pt := bench.Reexec(size, restarts)
		if restarts == 0 {
			fmt.Printf("reference run:              %v\n", pt.Reference)
			continue
		}
		fmt.Printf("re-execution of %d node(s):  %v  (%.0f%% of reference)\n",
			restarts, pt.Reexec, 100*float64(pt.Reexec)/float64(pt.Reference))
	}
	fmt.Println("\nonly receptions are replayed: re-executed emissions are")
	fmt.Println("suppressed by the HS vector, and event-logger traffic is not replayed")
}
