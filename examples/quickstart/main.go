// Quickstart: a two-rank ping-pong on a simulated MPICH-V2 system —
// then the same run with rank 1 killed mid-flight, recovered
// transparently by the runtime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"mpichv/internal/cluster"
	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
)

func pingPong(rtt *time.Duration) cluster.Program {
	return func(p *mpi.Proc) {
		const rounds = 50
		msg := []byte("hello, volatile world")
		t0 := p.Clock().Now()
		for r := 0; r < rounds; r++ {
			if p.Rank() == 0 {
				p.Send(1, 7, msg)
				reply, _ := p.Recv(1, 8)
				if string(reply) != string(msg) {
					p.Abortf("round %d: corrupted reply %q", r, reply)
				}
			} else {
				b, _ := p.Recv(0, 7)
				p.Send(0, 8, b)
			}
		}
		if p.Rank() == 0 {
			*rtt = (p.Clock().Now() - t0) / rounds
		}
	}
}

func main() {
	fmt.Println("== fault-free ping-pong on MPICH-V2 ==")
	var rtt time.Duration
	res := cluster.Run(cluster.Config{Impl: cluster.V2, N: 2}, pingPong(&rtt))
	fmt.Printf("50 verified rounds, mean RTT %v, %d reception events logged\n\n", rtt, res.ELLogged)

	fmt.Println("== same run, rank 1 killed after 3ms ==")
	res = cluster.Run(cluster.Config{
		Impl: cluster.V2, N: 2,
		Faults:         []dispatcher.Fault{{Time: 3 * time.Millisecond, Rank: 1}},
		DetectionDelay: time.Millisecond,
	}, pingPong(&rtt))
	fmt.Printf("kills=%d restarts=%d — rank 1 re-executed from its senders' logs\n", res.Kills, res.Restarts)
	fmt.Printf("the run still verified every round; mean RTT %v\n", rtt)
}
