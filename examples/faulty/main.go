// Faulty: the paper's figure 11 scenario — NAS BT class A on 4
// computing nodes with a single reliable node (event logger, checkpoint
// server, checkpoint scheduler), continuous random-node checkpointing,
// and an increasing number of faults injected during the execution.
// Execution time degrades smoothly and stays under twice the fault-free
// time even with many faults.
//
//	go run ./examples/faulty   (takes a minute or two)
package main

import (
	"fmt"
	"os"
	"time"

	"mpichv/internal/bench"
)

func main() {
	fmt.Println("BT class A on 4 nodes, always checkpointing a random node")
	fmt.Println("faults injected at one-tenth intervals of the fault-free duration")
	fmt.Println()
	quick := len(os.Args) > 1 && os.Args[1] == "-quick"
	for _, pt := range bench.Figure11Data(quick) {
		bar := ""
		for i := 0; i < int(pt.Ratio*20); i++ {
			bar += "#"
		}
		fmt.Printf("%d faults: %9v  %.2fx  ckpts=%-3d %s  verified=%v\n",
			pt.Faults, pt.Elapsed.Round(time.Millisecond), pt.Ratio, pt.Ckpts, bar, pt.Verified)
	}
}
