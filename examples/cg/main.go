// CG: a conjugate-gradient solve (the NAS CG kernel) on 8 simulated
// nodes, first fault-free on MPICH-P4 and MPICH-V2, then on V2 with two
// nodes crashing mid-solve. The solver's verification value must match
// the serial reference in every case.
//
//	go run ./examples/cg
package main

import (
	"fmt"
	"time"

	"mpichv/internal/bench"
	"mpichv/internal/cluster"
	"mpichv/internal/dispatcher"
	"mpichv/internal/mpi"
	"mpichv/internal/nas"
)

func main() {
	b := nas.CG("A")
	fmt.Println("NAS CG class A (reduced problem, full-class time model), 8 nodes")

	for _, impl := range []cluster.Impl{cluster.P4, cluster.V2} {
		run := bench.RunNAS(b, impl, 8, cluster.Config{})
		fmt.Printf("  %-9v  time %v  verified=%v\n", impl, run.Elapsed.Round(time.Millisecond), run.Verified)
	}

	fmt.Println("\nsame solve on V2 with ranks 2 and 5 crashing mid-run:")
	results := make([]nas.Result, 8)
	res := cluster.Run(cluster.Config{
		Impl: cluster.V2, N: 8,
		Faults: []dispatcher.Fault{
			{Time: 30 * time.Millisecond, Rank: 2},
			{Time: 60 * time.Millisecond, Rank: 5},
		},
	}, func(p *mpi.Proc) {
		results[p.Rank()] = b.Run(p, b)
	})
	ok := true
	for _, r := range results {
		ok = ok && r.Verified
	}
	fmt.Printf("  kills=%d restarts=%d, every rank verified=%v\n", res.Kills, res.Restarts, ok)
	fmt.Println("  the crashed ranks re-executed from the beginning, replaying their")
	fmt.Println("  receptions in logged order; the numerics are bit-for-bit unchanged")
}
