module mpichv

go 1.22
