// Command soak runs the long-running real-socket chaos harness: a full
// MPICH-V2 deployment as OS processes over loopback TCP, every
// computing node fronted by a fault-injecting proxy, with a seeded
// schedule of process kills and freezes. After the run it re-fetches
// the event logger's determinant store and the crash-surviving trace
// snapshots and audits them (no orphans, happens-before invariants),
// then writes the goodput/loss/recovery series to BENCH_soak.json.
//
// Usage:
//
//	soak -seed 42 -cns 3 -laps 60 -kills 2 -drop 0.02
//
// The same seed reproduces the same kill schedule and the same chaos
// variates. Exit status 1 means an audit failed or the run timed out.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mpichv/internal/apps"
	"mpichv/internal/deploy"
	"mpichv/internal/transport"
)

func main() {
	// This binary doubles as its own worker executable: when the
	// supervisor re-execs it with MPICHV_SERVE set, MaybeServe takes
	// over and never returns.
	deploy.MaybeServe(func(name string) (deploy.App, bool) {
		a, ok := apps.Get(name)
		return deploy.App(a), ok
	})

	var (
		seed     = flag.Uint64("seed", 42, "seed for the fault plan, chaos variates and disk faults")
		cns      = flag.Int("cns", 3, "computing nodes")
		laps     = flag.Int("laps", 60, "soak ring laps per rank")
		holdMS   = flag.Int("hold", 25, "per-rank token hold (ms)")
		payload  = flag.Int("payload", 256, "token payload bytes")
		kills    = flag.Int("kills", 2, "process SIGKILLs to inject")
		stalls   = flag.Int("stalls", 0, "process SIGSTOP freezes to inject")
		minAfter = flag.Duration("minafter", 2*time.Second, "earliest fault")
		over     = flag.Duration("over", 6*time.Second, "fault window width")
		stallFor = flag.Duration("stallfor", time.Second, "freeze length")
		drop     = flag.Float64("drop", 0, "proxy frame drop probability")
		dup      = flag.Float64("dup", 0, "proxy frame duplication probability")
		delay    = flag.Float64("delay", 0, "proxy frame delay probability")
		maxDelay = flag.Duration("maxdelay", 2*time.Millisecond, "proxy max injected delay")
		reset    = flag.Float64("reset", 0, "proxy mid-stream connection reset probability")
		stallP   = flag.Float64("stallp", 0, "proxy half-open stall probability")
		bw       = flag.Int64("bw", 0, "proxy bandwidth cap (bytes/s, 0 = unlimited)")
		disk     = flag.Int("disk", 0, "torn-write injection: tear every Nth WAL append")
		timeout  = flag.Duration("timeout", 2*time.Minute, "wall-clock safety limit")
		outPath  = flag.String("out", "BENCH_soak.json", "report path (empty = stdout only)")
		verbose  = flag.Bool("v", false, "stream supervision log to stderr")
	)
	flag.Parse()

	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	cfg := deploy.SoakConfig{
		Exe:     exe,
		CNs:     *cns,
		Laps:    *laps,
		HoldMS:  *holdMS,
		Payload: *payload,
		Seed:    *seed,
		Kills:   *kills,
		Stalls:  *stalls,

		MinAfter: *minAfter,
		Over:     *over,
		StallFor: *stallFor,
		Proxy: transport.ProxyPolicy{
			ChaosPolicy: transport.ChaosPolicy{
				Seed:      *seed,
				Drop:      *drop,
				Duplicate: *dup,
				Delay:     *delay,
				MaxDelay:  *maxDelay,
			},
			Reset:     *reset,
			Stall:     *stallP,
			Bandwidth: *bw,
		},
		DiskFaultEvery: *disk,
		Timeout:        *timeout,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	rep, err := deploy.RunSoak(cfg)
	if err != nil {
		fatal(err)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(enc, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("soak: report → %s\n", *outPath)
	} else {
		fmt.Println(string(enc))
	}
	fmt.Printf("soak: seed=%d laps=%d/%d kills=%d stalls=%d respawns=%d duration=%dms\n",
		rep.Seed, rep.LapsDone, rep.CNs*rep.LapsPerRank, rep.Kills, rep.Stalls, rep.Respawns, rep.DurationMS)
	fmt.Printf("soak: %s\n", rep.AuditSummary)
	fmt.Printf("soak: %s\n", rep.HBSummary)
	if !rep.OK {
		for _, f := range rep.Failures {
			fmt.Fprintln(os.Stderr, "soak: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("soak: OK")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soak:", err)
	os.Exit(1)
}
