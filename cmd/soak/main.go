// Command soak runs the long-running real-socket chaos harness: a full
// MPICH-V2 deployment as OS processes over loopback TCP, every
// computing node (and, with -proxysvc, every service) fronted by a
// fault-injecting proxy, with a seeded schedule of process kills and
// freezes aimed at a configurable role kill-set. After each phase it
// re-fetches a read quorum of the event-logger replicas' determinant
// stores and the crash-surviving trace snapshots and audits them (no
// orphans, happens-before invariants), then writes the rolling-seed
// goodput/loss/recovery series to BENCH_soak.json.
//
// Usage:
//
//	soak -seed 42 -cns 3 -els 3 -roles cn,el,cs,sc -phases 2 -kills 4
//
// The same seed reproduces the same per-phase kill schedules and chaos
// variates. -regress <baseline.json> additionally gates the run on the
// committed goodput: a drop of more than -regress-tol (default 20%)
// fails the run. Exit status 1 means an audit failed, the run timed
// out, or the goodput regressed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpichv/internal/apps"
	"mpichv/internal/daemon"
	"mpichv/internal/deploy"
	"mpichv/internal/transport"
)

func parseRoles(s string) ([]deploy.Role, error) {
	var roles []deploy.Role
	for _, part := range strings.Split(s, ",") {
		switch r := deploy.Role(strings.TrimSpace(part)); r {
		case deploy.RoleCN, deploy.RoleEL, deploy.RoleCS, deploy.RoleSched:
			roles = append(roles, r)
		case "":
		default:
			return nil, fmt.Errorf("unknown role %q (want cn, el, cs or sc)", part)
		}
	}
	return roles, nil
}

func main() {
	// This binary doubles as its own worker executable: when the
	// supervisor re-execs it with MPICHV_SERVE set, MaybeServe takes
	// over and never returns.
	deploy.MaybeServe(func(name string) (deploy.App, bool) {
		a, ok := apps.Get(name)
		return deploy.App(a), ok
	})

	var (
		seed     = flag.Uint64("seed", 42, "base seed for the fault plans, chaos variates and disk faults")
		cns      = flag.Int("cns", 3, "computing nodes")
		els      = flag.Int("els", 1, "event-logger replicas (write quorum = majority)")
		css      = flag.Int("css", 1, "checkpoint-server replicas")
		laps     = flag.Int("laps", 60, "soak ring laps per rank (per phase)")
		holdMS   = flag.Int("hold", 25, "per-rank token hold (ms)")
		payload  = flag.Int("payload", 256, "token payload bytes")
		kills    = flag.Int("kills", 2, "process SIGKILLs to inject per phase")
		stalls   = flag.Int("stalls", 0, "process SIGSTOP freezes to inject per phase")
		rolesStr = flag.String("roles", "cn", "comma-separated kill-set (cn,el,cs,sc); kills round-robin across it")
		phases   = flag.Int("phases", 1, "soak phases; each rolls a fresh seed off the base seed")
		proxySvc = flag.Bool("proxysvc", false, "front service listeners with chaos proxies too")
		minAfter = flag.Duration("minafter", 2*time.Second, "earliest fault")
		over     = flag.Duration("over", 6*time.Second, "fault window width")
		stallFor = flag.Duration("stallfor", time.Second, "freeze length")
		drop     = flag.Float64("drop", 0, "proxy frame drop probability")
		dup      = flag.Float64("dup", 0, "proxy frame duplication probability")
		delay    = flag.Float64("delay", 0, "proxy frame delay probability")
		maxDelay = flag.Duration("maxdelay", 2*time.Millisecond, "proxy max injected delay")
		reset    = flag.Float64("reset", 0, "proxy mid-stream connection reset probability")
		stallP   = flag.Float64("stallp", 0, "proxy half-open stall probability")
		bw       = flag.Int64("bw", 0, "proxy bandwidth cap (bytes/s, 0 = unlimited)")
		disk     = flag.Int("disk", 0, "torn-write injection: tear every Nth WAL append")
		timeout  = flag.Duration("timeout", 2*time.Minute, "wall-clock safety limit per phase")
		outPath  = flag.String("out", "BENCH_soak.json", "report path (empty = stdout only)")
		regress  = flag.String("regress", "", "baseline BENCH_soak.json to gate goodput against (empty = no gate)")
		regTol   = flag.Float64("regress-tol", 0.2, "fractional goodput drop tolerated by -regress")
		detMode  = flag.String("detmode", "off", "determinant suppression policy on the CN daemons (off, adaptive, aggressive)")
		verbose  = flag.Bool("v", false, "stream supervision log to stderr")
	)
	flag.Parse()

	var det int
	switch *detMode {
	case "", "off":
		det = daemon.DetOff
	case "adaptive":
		det = daemon.DetAdaptive
	case "aggressive":
		det = daemon.DetAggressive
	default:
		fatal(fmt.Errorf("unknown -detmode %q (off, adaptive, aggressive)", *detMode))
	}

	roles, err := parseRoles(*rolesStr)
	if err != nil {
		fatal(err)
	}
	// Read the baseline up front: -regress and -out may name the same
	// file, and the fresh series must be gated against the committed
	// numbers, not its own.
	var baseline []byte
	if *regress != "" {
		baseline, err = os.ReadFile(*regress)
		if err != nil {
			fatal(fmt.Errorf("regression baseline: %w", err))
		}
	}

	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	cfg := deploy.SoakConfig{
		Exe:       exe,
		CNs:       *cns,
		ELs:       *els,
		CSs:       *css,
		Laps:      *laps,
		HoldMS:    *holdMS,
		Payload:   *payload,
		Seed:      *seed,
		Kills:     *kills,
		Stalls:    *stalls,
		KillRoles: roles,

		MinAfter: *minAfter,
		Over:     *over,
		StallFor: *stallFor,
		Proxy: transport.ProxyPolicy{
			ChaosPolicy: transport.ChaosPolicy{
				Seed:      *seed,
				Drop:      *drop,
				Duplicate: *dup,
				Delay:     *delay,
				MaxDelay:  *maxDelay,
			},
			Reset:     *reset,
			Stall:     *stallP,
			Bandwidth: *bw,
		},
		ProxyServices:  *proxySvc,
		DiskFaultEvery: *disk,
		DetMode:        det,
		Timeout:        *timeout,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	ser, err := deploy.RunSoakSeries(cfg, *phases)
	if err != nil {
		fatal(err)
	}
	enc, err := json.MarshalIndent(ser, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(enc, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("soak: report → %s\n", *outPath)
	} else {
		fmt.Println(string(enc))
	}
	for i, rep := range ser.Phases {
		fmt.Printf("soak: phase %d: seed=%d laps=%d/%d kills=%v stalls=%d respawns=%d duration=%dms\n",
			i+1, rep.Seed, rep.LapsDone, rep.CNs*rep.LapsPerRank, rep.RoleKills, rep.Stalls, rep.Respawns, rep.DurationMS)
		fmt.Printf("soak: phase %d: %s\n", i+1, rep.AuditSummary)
		fmt.Printf("soak: phase %d: %s\n", i+1, rep.HBSummary)
	}
	fmt.Printf("soak: %d phases, %d laps, %.1f laps/s, kills per role %v\n",
		len(ser.Phases), ser.LapsDone, ser.GoodputLPS, ser.RoleKills)

	ok := ser.OK
	if baseline != nil {
		if err := deploy.CheckGoodputRegression(ser.GoodputLPS, baseline, *regTol); err != nil {
			fmt.Fprintln(os.Stderr, "soak: FAIL:", err)
			ok = false
		} else {
			fmt.Printf("soak: goodput %.1f laps/s within %.0f%% of baseline\n", ser.GoodputLPS, *regTol*100)
		}
	}
	if !ok {
		for _, f := range ser.Failures {
			fmt.Fprintln(os.Stderr, "soak: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("soak: OK")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soak:", err)
	os.Exit(1)
}
