// Command ckptserver runs a standalone MPICH-V2 Checkpoint Server
// (paper §4.6.1) over TCP: the reliable repository of process images.
//
// Usage:
//
//	ckptserver -pg program.txt
//
// The program file names this server's address on its "cs" line.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpichv/internal/ckpt"
	"mpichv/internal/deploy"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
)

func main() {
	pgPath := flag.String("pg", "", "program file (required)")
	flag.Parse()
	if *pgPath == "" {
		fmt.Fprintln(os.Stderr, "ckptserver: -pg program file is required")
		os.Exit(2)
	}
	pg, err := deploy.ParseFile(*pgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckptserver:", err)
		os.Exit(1)
	}
	rt := vtime.NewReal()
	fab := transport.NewTCPFabric(rt, pg.AddrMap())
	ckpt.NewServer(rt, fab.Attach(deploy.CSID, "ckpt-server")).Start()
	fmt.Println("checkpoint server serving")
	select {}
}
