// Command vbench regenerates the tables and figures of the paper's
// evaluation on the simulated testbed.
//
// Usage:
//
//	vbench -list             # show experiment ids
//	vbench -exp fig5         # regenerate one experiment
//	vbench -exp all          # regenerate everything (slow)
//	vbench -exp fig7 -quick  # trimmed sweeps
//	vbench -exp perf -json   # write BENCH_perf.json instead of the table
//	vbench -exp trace -json  # causal-tracing overhead, HB audit verdict and
//	                         # critical-path breakdown (BENCH_trace.json)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mpichv/internal/apps"
	"mpichv/internal/bench"
	"mpichv/internal/deploy"
)

func main() {
	// The soak experiment deploys real worker processes; when vbench is
	// used as the worker executable, MaybeServe takes over.
	deploy.MaybeServe(func(name string) (deploy.App, bool) {
		a, ok := apps.Get(name)
		return deploy.App(a), ok
	})
	var (
		exp        = flag.String("exp", "", "experiment id, or \"all\"")
		quick      = flag.Bool("quick", false, "trim sweeps for a fast run")
		list       = flag.Bool("list", false, "list experiments")
		jsonOut    = flag.Bool("json", false, "write BENCH_<id>.json instead of printing the table")
		elReplicas = flag.Int("elreplicas", 0, "force R replicated event loggers on the chaos experiment (0 = legacy primary+backup)")
		elQuorum   = flag.Int("elquorum", 0, "write quorum Q for -elreplicas (0 = majority)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "vbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "vbench: -memprofile: %v\n", err)
			}
		}()
	}
	bench.ELOverrideReplicas = *elReplicas
	bench.ELOverrideQuorum = *elQuorum

	if *list || *exp == "" {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nvbench: pick one with -exp <id> (or -exp all)")
			os.Exit(2)
		}
		return
	}

	run := func(e bench.Experiment) {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		start := time.Now()
		if *jsonOut {
			// The structured twin of the table: one run of the sweep,
			// marshalled, never both (sweeps are too slow to run twice).
			if e.Data == nil {
				fmt.Fprintf(os.Stderr, "vbench: %s has no structured data export\n", e.ID)
				os.Exit(1)
			}
			data, err := e.Data(*quick)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			enc, err := json.MarshalIndent(data, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "vbench: %s: marshal: %v\n", e.ID, err)
				os.Exit(1)
			}
			path := fmt.Sprintf("BENCH_%s.json", e.ID)
			if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "vbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("--- %s → %s in %v\n\n", e.ID, path, time.Since(start).Round(time.Millisecond))
			return
		}
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "vbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
		return
	}
	e, ok := bench.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "vbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
