// Command vbench regenerates the tables and figures of the paper's
// evaluation on the simulated testbed.
//
// Usage:
//
//	vbench -list             # show experiment ids
//	vbench -exp fig5         # regenerate one experiment
//	vbench -exp all          # regenerate everything (slow)
//	vbench -exp fig7 -quick  # trimmed sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpichv/internal/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id, or \"all\"")
		quick      = flag.Bool("quick", false, "trim sweeps for a fast run")
		list       = flag.Bool("list", false, "list experiments")
		elReplicas = flag.Int("elreplicas", 0, "force R replicated event loggers on the chaos experiment (0 = legacy primary+backup)")
		elQuorum   = flag.Int("elquorum", 0, "write quorum Q for -elreplicas (0 = majority)")
	)
	flag.Parse()
	bench.ELOverrideReplicas = *elReplicas
	bench.ELOverrideQuorum = *elQuorum

	if *list || *exp == "" {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nvbench: pick one with -exp <id> (or -exp all)")
			os.Exit(2)
		}
		return
	}

	run := func(e bench.Experiment) {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "vbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
		return
	}
	e, ok := bench.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "vbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
