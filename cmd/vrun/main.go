// Command vrun is the mpirun of this MPICH-V2 reproduction (paper
// §4.7): it reads a program file describing the machines of the run —
// computing nodes, event logger, checkpoint server, checkpoint
// scheduler — launches every role as an OS process over real TCP,
// monitors the computing nodes, and re-launches crashed ones with the
// recovery protocol.
//
// Usage:
//
//	vrun -pg program.txt -app tokenring
//
// where program.txt looks like:
//
//	el 127.0.0.1:9000
//	cs 127.0.0.1:9001
//	sc 127.0.0.1:9002
//	cn 127.0.0.1:9100
//	cn 127.0.0.1:9101
//	cn 127.0.0.1:9102
//
// Kill a worker process mid-run (kill -9 <pid>) to watch the dispatcher
// restart it and the protocol replay its messages. Available apps:
// vrun -list.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpichv/internal/apps"
	"mpichv/internal/deploy"
)

func main() {
	// Supervisor-spawned workers re-exec this binary with MPICHV_SERVE
	// set; MaybeServe takes over and never returns.
	deploy.MaybeServe(func(name string) (deploy.App, bool) {
		a, ok := apps.Get(name)
		return deploy.App(a), ok
	})

	var (
		pgPath    = flag.String("pg", "", "program file (required)")
		appName   = flag.String("app", "tokenring", "registered MPI program to run")
		serve     = flag.Int("serve", -1, "internal: serve one node id of the program file")
		restarted = flag.Bool("restarted", false, "internal: recover this node from its logs")
		list      = flag.Bool("list", false, "list registered apps")
	)
	flag.Parse()

	if *list {
		for _, n := range apps.Names() {
			fmt.Println(n)
		}
		return
	}
	if *pgPath == "" {
		fmt.Fprintln(os.Stderr, "vrun: -pg program file is required")
		flag.Usage()
		os.Exit(2)
	}

	if *serve >= 0 {
		pg, err := deploy.ParseFile(*pgPath)
		if err != nil {
			fatal(err)
		}
		app, ok := apps.Get(*appName)
		if !ok {
			fatal(fmt.Errorf("unknown app %q (try -list)", *appName))
		}
		if err := deploy.Serve(pg, *serve, deploy.App(app), *restarted, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if _, ok := apps.Get(*appName); !ok {
		fatal(fmt.Errorf("unknown app %q (try -list)", *appName))
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	l := &deploy.Launcher{Program: *pgPath, AppName: *appName, Exe: exe}
	if err := l.Run(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vrun:", err)
	os.Exit(1)
}
