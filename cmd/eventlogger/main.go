// Command eventlogger runs a standalone MPICH-V2 Event Logger (paper
// §4.5) over TCP, for deployments that place the reliable services on
// dedicated machines rather than under a single vrun.
//
// Usage:
//
//	eventlogger -pg program.txt
//
// The program file names this logger's address on its "el" line.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpichv/internal/deploy"
	"mpichv/internal/eventlog"
	"mpichv/internal/transport"
	"mpichv/internal/vtime"
)

func main() {
	pgPath := flag.String("pg", "", "program file (required)")
	flag.Parse()
	if *pgPath == "" {
		fmt.Fprintln(os.Stderr, "eventlogger: -pg program file is required")
		os.Exit(2)
	}
	pg, err := deploy.ParseFile(*pgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eventlogger:", err)
		os.Exit(1)
	}
	rt := vtime.NewReal()
	fab := transport.NewTCPFabric(rt, pg.AddrMap())
	eventlog.NewServer(rt, fab.Attach(deploy.ELID, "event-logger"), 0).Start()
	fmt.Println("event logger serving")
	select {}
}
