GO ?= go

.PHONY: verify build vet test staticcheck cover race bench bench-paper bench-detsupp bench-fleet soak-smoke soak-regress ci

verify: ## build + vet + full test suite (tier-1 gate)
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

staticcheck: ## staticcheck when the binary is on PATH (no network installs)
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping"; \
	fi

cover: ## coverage summary; internal/trace (recorder+auditor) must hold >=80%
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@pct=$$($(GO) test -cover ./internal/trace/ | \
		sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	echo "internal/trace statement coverage: $$pct% (floor 80%)"; \
	awk -v p="$$pct" 'BEGIN { exit (p + 0 >= 80.0) ? 0 : 1 }' || \
		{ echo "FAIL: internal/trace coverage under 80%"; exit 1; }

race: ## race detector over the full tree (mirrors the CI race job)
	$(GO) test -race -count=1 ./...

bench: ## Go microbenchmarks with allocation counts (wire codec, vtime actors)
	$(GO) test -run '^$$' -bench . -benchmem ./internal/wire/ ./internal/vtime/

bench-paper: ## quick pass over every paper experiment
	$(GO) run ./cmd/vbench -exp all -quick

# bench-detsupp gates the suppression layer: the sweep must emit its
# JSON artifact, and TestDetSuppShape fails unless adaptive mode logs
# strictly fewer (>=2x fewer) gated determinants per message than the
# pessimistic baseline on the deterministic ring, with a measured drop
# in WAITLOGGED time.
bench-detsupp: ## determinant-suppression sweep + its acceptance gate
	$(GO) run ./cmd/vbench -exp detsupp -quick -json && test -f BENCH_detsupp.json
	$(GO) test ./internal/bench/ -run TestDetSuppShape -v

# bench-fleet gates the sharded fleet + parallel core: the sweep must
# emit its JSON artifact, 4 EL shards must log determinants at >=2x the
# 1-shard rate on the quick workload with every audit green, and the
# serial and parallel vtime cores must produce byte-identical schedules
# (hash equality) across three workload shapes.
bench-fleet: ## sharded-fleet scaling sweep + its acceptance gate
	$(GO) run ./cmd/vbench -exp fleet -quick -json && test -f BENCH_fleet.json
	$(GO) test ./internal/bench/ -run 'TestFleetShape|TestFleetParSchedulesIdentical' -v

# soak-smoke exits non-zero unless every audit is green, the per-role
# kill quota was met (each of cn/el/cs/sc killed at least once per
# phase — including at least one EL replica and the scheduler), and
# teardown leaked zero goroutines.
soak-smoke: ## ~60s rolling-seed soak: replicated service plane + chaos proxies + per-role seeded kills
	$(GO) run ./cmd/soak -seed 42 -cns 3 -els 3 -css 2 -detmode adaptive \
		-roles cn,el,cs,sc -phases 2 -proxysvc \
		-laps 300 -hold 20 -kills 4 -stalls 1 \
		-minafter 2s -over 5s -stallfor 1s \
		-drop 0.02 -dup 0.01 -delay 0.1 -maxdelay 2ms -disk 9 \
		-timeout 2m -out BENCH_soak.json

# soak-regress runs the same soak but gates it on the committed
# baseline instead of overwriting it: a goodput drop of more than 20%
# against BENCH_soak.json fails the target.
soak-regress: ## soak-smoke gated on committed goodput (>20% drop fails)
	$(GO) run ./cmd/soak -seed 42 -cns 3 -els 3 -css 2 -detmode adaptive \
		-roles cn,el,cs,sc -phases 2 -proxysvc \
		-laps 300 -hold 20 -kills 4 -stalls 1 \
		-minafter 2s -over 5s -stallfor 1s \
		-drop 0.02 -dup 0.01 -delay 0.1 -maxdelay 2ms -disk 9 \
		-timeout 2m -out "" -regress BENCH_soak.json -regress-tol 0.2

ci: ## the full gate: build + vet + staticcheck + tests + coverage floor + race core
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) staticcheck
	$(MAKE) cover
	$(GO) test -race -count=1 ./internal/eventlog/ ./internal/ckpt/ \
		./internal/cluster/ ./internal/transport/
