GO ?= go

.PHONY: verify build vet test race bench bench-paper ci

verify: ## build + vet + full test suite (tier-1 gate)
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race: ## race detector over the concurrency-bearing packages
	$(GO) test -race -count=1 ./internal/vtime/ ./internal/transport/ \
		./internal/daemon/ ./internal/eventlog/ ./internal/ckpt/ \
		./internal/dispatcher/ ./internal/cluster/ ./internal/mpi/

bench: ## Go microbenchmarks with allocation counts (wire codec, vtime actors)
	$(GO) test -run '^$$' -bench . -benchmem ./internal/wire/ ./internal/vtime/

bench-paper: ## quick pass over every paper experiment
	$(GO) run ./cmd/vbench -exp all -quick

ci: ## the full gate: build + vet + tests + race on the logging/recovery core
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race -count=1 ./internal/eventlog/ ./internal/ckpt/ \
		./internal/cluster/ ./internal/transport/
