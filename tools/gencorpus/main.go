// Command gencorpus regenerates the committed seed corpora for the
// wire/core/ckpt fuzz targets. Each seed is a well-formed frame from
// the real encoders (plus a few deliberately truncated ones), written
// in the "go test fuzz v1" format the fuzzing engine loads from
// testdata/fuzz/<FuzzName>/. Run from the repo root:
//
//	go run ./tools/gencorpus
package main

import (
	"crypto/sha256"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mpichv/internal/ckpt"
	"mpichv/internal/core"
	"mpichv/internal/wire"
)

func writeSeed(dir string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	name := fmt.Sprintf("seed-%x", sha256.Sum256([]byte(body)))[:21]
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}

func main() {
	seeds := map[string][][]byte{}
	add := func(target string, frames ...[]byte) {
		seeds[target] = append(seeds[target], frames...)
	}

	// Payload frames: legacy, spanned, empty body, truncated header,
	// piggybacked determinant blocks (alone and combined with a span).
	add("internal/wire/testdata/fuzz/FuzzDecodePayload",
		wire.EncodePayload(wire.PayloadHeader{SenderClock: 7, PairSeq: 2, DevKind: 3}, []byte("ring token")),
		wire.EncodePayload(wire.PayloadHeader{SenderClock: 41, PairSeq: 9, Span: 0x0003_0000_0000_0029}, []byte("traced payload")),
		wire.EncodePayload(wire.PayloadHeader{}, nil),
		wire.EncodePayload(wire.PayloadHeader{SenderClock: 1}, []byte("x"))[:12],
		wire.EncodePayload(wire.PayloadHeader{SenderClock: 5, Dets: []core.Event{{Sender: 2, SenderClock: 9, RecvClock: 4, Seq: 1}}}, []byte("det")),
		wire.EncodePayload(wire.PayloadHeader{SenderClock: 6, Span: 0x0001_0000_0000_0002, Dets: []core.Event{
			{Sender: 0, SenderClock: 1, RecvClock: 2, Probes: 3, Seq: 1},
			{Sender: 7, SenderClock: 1 << 40, RecvClock: 1<<40 + 1, Seq: 2},
		}}, nil),
	)
	add("internal/wire/testdata/fuzz/FuzzDecodeDetRelay",
		wire.AppendDetRelay(nil, 7, 3, []core.Event{{Sender: 1, SenderClock: 2, RecvClock: 3, Seq: 4}}),
		wire.AppendDetRelay(nil, 0, 0, nil),
		wire.AppendDetRelay(nil, 12, 2, []core.Event{{Sender: 5, Probes: 9, Seq: 1}})[:11],
	)

	evs := []core.Event{
		{Sender: 0, SenderClock: 1, RecvClock: 2, Probes: 1, Seq: 1},
		{Sender: 3, SenderClock: 1 << 33, RecvClock: 1<<33 + 1, Seq: 2},
	}
	add("internal/wire/testdata/fuzz/FuzzDecodeEvents",
		wire.EncodeEvents(nil),
		wire.EncodeEvents(evs),
		wire.EncodeEvents(evs)[:9],
	)
	add("internal/wire/testdata/fuzz/FuzzDecodeEventLog",
		wire.EncodeEventLog(12, evs),
		wire.EncodeEventLog(0, nil),
	)
	add("internal/wire/testdata/fuzz/FuzzDecodeEventAck",
		wire.EncodeEventAck(12, 11),
		wire.EncodeEventAck(0, 0),
		wire.EncodeEventAck(1, 1)[:5],
	)
	add("internal/wire/testdata/fuzz/FuzzDecodeCkptChunk",
		wire.AppendCkptChunk(nil, 4, 0, 3, []byte("chunk zero")),
		wire.AppendCkptChunk(nil, 4, 2, 3, nil),
		wire.AppendCkptChunk(nil, 1, 0, 1, []byte("whole image"))[:10],
	)
	add("internal/wire/testdata/fuzz/FuzzDecodeCkptManifest",
		wire.EncodeCkptManifest(wire.CkptManifest{Present: true, Seq: 6, Size: 130, ChunkSize: 64, ImageCRC: 0xdead, ChunkCRCs: []uint32{1, 2, 3}}),
		wire.EncodeCkptManifest(wire.CkptManifest{}),
	)

	sn := &core.Snapshot{
		Rank:  2,
		H:     29,
		HS:    map[int]uint64{0: 3, 1: 9},
		HR:    map[int]uint64{3: 7},
		SeqTo: map[int]uint64{0: 2},
		SeqIn: map[int]uint64{3: 5},
		Saved: []core.SavedMsg{{To: 0, Clock: 11, Seq: 2, Kind: 1, Data: []byte("saved payload")}},
	}
	snb, err := sn.Encode()
	if err != nil {
		log.Fatal(err)
	}
	emptySn, err := (&core.Snapshot{}).Encode()
	if err != nil {
		log.Fatal(err)
	}
	add("internal/core/testdata/fuzz/FuzzDecodeSnapshot", snb, emptySn, snb[:17])

	im := &ckpt.Image{Rank: 1, Seq: 4, BaseSeq: 3, AppState: []byte("app bytes"), Proto: snb}
	imb, err := im.Encode()
	if err != nil {
		log.Fatal(err)
	}
	emptyIm, err := (&ckpt.Image{}).Encode()
	if err != nil {
		log.Fatal(err)
	}
	add("internal/ckpt/testdata/fuzz/FuzzDecodeImage", imb, emptyIm, imb[:8])

	for dir, frames := range seeds {
		for _, frame := range frames {
			writeSeed(dir, frame)
		}
		fmt.Printf("%-55s %d seeds\n", dir, len(frames))
	}
}
